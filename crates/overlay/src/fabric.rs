//! The overlay fabric: a thin deterministic scheduler over broker state
//! machines.
//!
//! [`OverlayFabric`] owns one [`Broker`] per router of a [`Topology`] and
//! drives the deployment by shuttling [`Output`]s back in as [`Input`]s:
//!
//! 1. **Bootstrap** — in [`Trust::Attested`] mode every broker runs on its
//!    own simulated SGX machine; the producer provisions `SK` into each
//!    enclave via remote attestation, and a timer tick makes every tree
//!    edge's lower endpoint initiate the mutual-quote handshake of
//!    [`sgx_sim::link`]. The fabric forwards the handshake frames until
//!    every broker reports `Serving`; all subsequent frames on an edge
//!    travel through sealed channels ([`scbr_net::SecureLink`]).
//! 2. **Traffic** — subscriptions, unsubscriptions and publication
//!    batches enter at an edge broker as local inputs; the fabric pumps
//!    the resulting frames breadth-first until the tree is quiescent, so
//!    traffic order is deterministic for a given seed.
//! 3. **Failure** — [`OverlayFabric::crash`] feeds a broker the `Crash`
//!    admin command (all volatile state gone; frames to it are dropped
//!    and counted), and [`OverlayFabric::restart`] drives the full
//!    rejoin: restart from the sealed record, re-attestation, link
//!    re-keying, neighbour replay, stale-subscription reconciliation.
//!    The per-edge frame counters expose exactly which links carried
//!    recovery traffic.
//! 4. **Detection** — with [`HeartbeatConfig`] enabled (see
//!    [`FabricConfig::with_heartbeats`]), [`OverlayFabric::tick_round`]
//!    drives every broker's liveness timers and aggregates their
//!    [`LinkEvent::Suspect`] accusations: once a majority of a broker's
//!    *live* neighbours accuse it of silence, the fabric fences it
//!    (`Crash` observed) and starts its rejoin automatically — no
//!    operator call. [`OverlayFabric::run_detection`] loops rounds until
//!    every broker has settled, recovering any number of concurrently
//!    crashed brokers, adjacent ones included.

use crate::broker::{
    Broker, BrokerStats, HeartbeatConfig, Input, Lifecycle, LinkEvent, LinkFrame, LocalDelivery,
    Output, SuspectReason,
};
use crate::error::OverlayError;
use crate::partition::{PartitionConfig, RebalanceReport};
use crate::topology::Topology;
use scbr::ids::{ClientId, KeyEpoch, SubscriptionId};
use scbr::index::IndexKind;
use scbr::protocol::keys::ProducerCrypto;
use scbr::protocol::messages::PublishItem;
use scbr::{PublicationSpec, ScbrError, SubscriptionSpec};
use scbr_crypto::rng::CryptoRng;
use scbr_telemetry::{BrokerTelemetry, MetricsRegistry, TelemetrySnapshot, TraceId};
use sgx_sim::attest::{AttestationService, VerifierPolicy};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The measured content of the genuine overlay routing enclave. A broker
/// built from different code has a different `MRENCLAVE` and is refused
/// by every honest peer's link policy.
pub const ROUTER_ENCLAVE_CODE: &[u8] = b"scbr overlay routing engine v1";

/// The `MRENCLAVE` all genuine overlay routers share.
pub fn router_measurement() -> sgx_sim::enclave::Measurement {
    crate::broker::router_builder(ROUTER_ENCLAVE_CODE).measurement()
}

/// How subscriptions propagate through the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Propagation {
    /// Forward a subscription on a link only when nothing already
    /// forwarded there covers it (the real mode).
    CoveringPruned,
    /// Forward every subscription on every link (the equivalence oracle).
    Flood,
}

/// How brokers and links authenticate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trust {
    /// Per-broker SGX platforms, SK via remote attestation, links keyed
    /// by mutual-quote handshakes and sealed.
    Attested,
    /// Keys installed directly, links in the clear (fast functional
    /// testing; no security claims).
    PreShared,
}

/// Fabric construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct FabricConfig {
    /// Seed for all deterministic key material and workload encryption.
    pub seed: u64,
    /// Index implementation each broker runs.
    pub index: IndexKind,
    /// Subscription-propagation mode.
    pub propagation: Propagation,
    /// Authentication mode.
    pub trust: Trust,
    /// Group-key epoch stamped onto published payloads. Advanced by the
    /// operator on key rotation ([`OverlayFabric::set_epoch`]) — restart
    /// tests advance it across a crash to pin that recovery does not
    /// resurrect an old epoch.
    pub epoch: KeyEpoch,
    /// Liveness timers installed on every broker. `None` (the default)
    /// keeps the legacy behaviour: no heartbeats, no suspicion,
    /// operator-driven restarts only.
    pub heartbeats: Option<HeartbeatConfig>,
    /// Hot-path telemetry on every broker: per-stage latency histograms,
    /// trace ids on published batches, per-hop flight records. Off by
    /// default — the instrumented and uninstrumented hot paths are
    /// behaviourally identical, but off keeps the crossing counts
    /// byte-for-byte those of the seed fabric.
    pub telemetry: bool,
    /// Matcher partitioning inside every broker. The default (1 slice)
    /// is the legacy single-engine matcher; with more slices each broker
    /// shards its subscriptions and rebalances them on its serving ticks
    /// (see [`PartitionConfig`]).
    pub partition: PartitionConfig,
}

impl FabricConfig {
    /// The default production-shaped configuration: attested brokers,
    /// covering-pruned propagation, poset index, epoch 0.
    pub fn attested(seed: u64) -> Self {
        FabricConfig {
            seed,
            index: IndexKind::Poset,
            propagation: Propagation::CoveringPruned,
            trust: Trust::Attested,
            epoch: KeyEpoch(0),
            heartbeats: None,
            telemetry: false,
            partition: PartitionConfig::default(),
        }
    }

    /// Fast functional-test configuration (no attestation, no sealing).
    pub fn preshared(seed: u64) -> Self {
        FabricConfig { trust: Trust::PreShared, ..FabricConfig::attested(seed) }
    }

    /// Enables timer-driven failure detection on every broker.
    #[must_use]
    pub fn with_heartbeats(mut self, heartbeats: HeartbeatConfig) -> Self {
        self.heartbeats = Some(heartbeats);
        self
    }

    /// Enables hot-path telemetry (stage histograms + cross-hop tracing)
    /// on every broker.
    #[must_use]
    pub fn with_telemetry(mut self) -> Self {
        self.telemetry = true;
        self
    }

    /// Partitions every broker's matcher into `config.slices` slices
    /// with skew-driven auto-rebalancing.
    #[must_use]
    pub fn with_partition(mut self, partition: PartitionConfig) -> Self {
        self.partition = partition;
        self
    }
}

/// One delivered publication: which edge client received which
/// publication of a [`OverlayFabric::publish`] call, at which router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Delivery {
    /// The broker that delivered.
    pub router: usize,
    /// The receiving edge client.
    pub client: ClientId,
    /// Index of the publication within the published batch.
    pub publication: usize,
}

/// What a completed [`OverlayFabric::restart`] cost and recovered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RejoinReport {
    /// Live subscriptions restored from the sealed recovery record.
    pub restored: usize,
    /// Registration envelopes replayed by the surviving neighbours.
    pub replayed: usize,
    /// Restored subscriptions the neighbours no longer vouched for
    /// (unsubscribed during the outage), dropped and propagated.
    pub dropped_stale: usize,
    /// Total frames the rejoin put on the wire (handshakes, replay,
    /// reconciliation), summed over all links.
    pub recovery_frames: u64,
}

/// One automatic fence-and-restart performed by the detection loop: the
/// fabric observed quorum suspicion against `router` during detection
/// round `round` and started its rejoin with no operator call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AutoRejoin {
    /// The broker that was fenced and restarted.
    pub router: usize,
    /// The detection round (see [`OverlayFabric::tick_round`]) in which
    /// quorum was reached.
    pub round: u64,
}

/// A running overlay of attested brokers.
pub struct OverlayFabric {
    topology: Topology,
    brokers: Vec<Broker>,
    producer: ProducerCrypto,
    rng: CryptoRng,
    next_sub: u64,
    /// Every subscription ever issued: id → (edge router, client). Kept
    /// across removal so a double-unsubscribe is recognised (idempotent)
    /// while a never-issued id is a clean error.
    issued: BTreeMap<SubscriptionId, (usize, ClientId)>,
    epoch: KeyEpoch,
    trust: Trust,
    /// Trust anchors, kept for re-attestation on restart (attested mode).
    service: Option<AttestationService>,
    policy: Option<VerifierPolicy>,
    /// The scheduler's virtual clock: one tick per dispatched input.
    clock: u64,
    /// Frames put on each directed edge, cumulative.
    edge_frames: BTreeMap<(usize, usize), u64>,
    /// Frames dropped (crashed destination or injected loss), cumulative.
    dropped_frames: u64,
    /// Frames dropped per directed edge, cumulative (the loss-injection
    /// ledger: sums to `dropped_frames`).
    edge_drops: BTreeMap<(usize, usize), u64>,
    /// One-shot frame-loss injection per directed edge (test hook for
    /// the sequence-gap liveness signal).
    drop_plan: BTreeSet<(usize, usize)>,
    /// Typed events surfaced by brokers, in dispatch order.
    events: Vec<(usize, LinkEvent)>,
    /// Standing silence accusations: suspect → the neighbours currently
    /// accusing it. Fed by `Suspect { reason: Silence }` events, drained
    /// by `Cleared` events and by accuser crashes; `Gap` suspicions heal
    /// at link level and never enter.
    suspicions: BTreeMap<usize, BTreeSet<usize>>,
    /// Detection rounds run so far ([`OverlayFabric::tick_round`]).
    rounds: u64,
    /// Whether the fabric was built with telemetry enabled.
    telemetry: bool,
    /// Next trace id handed out by [`OverlayFabric::publish_traced`]
    /// (starts at 1; 0 is the untraced sentinel).
    next_trace: u64,
    /// Per-broker tick stride: a broker with stride `s` receives a timer
    /// tick only every `s`-th detection round (models a slow-but-alive
    /// host whose heartbeats are delayed, not lost). Default 1.
    strides: BTreeMap<usize, u64>,
}

impl std::fmt::Debug for OverlayFabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OverlayFabric")
            .field("routers", &self.topology.routers())
            .field("subscriptions", &self.next_sub)
            .finish()
    }
}

impl OverlayFabric {
    /// Builds, attests and links a fabric over `topology`, generating a
    /// fresh producer identity from the config seed.
    ///
    /// # Errors
    ///
    /// Enclave-launch, attestation, provisioning or handshake failures.
    pub fn build(topology: Topology, config: FabricConfig) -> Result<Self, OverlayError> {
        let mut rng = CryptoRng::from_seed(config.seed);
        let producer = ProducerCrypto::generate(512, &mut rng).map_err(OverlayError::Routing)?;
        Self::build_with_producer(topology, config, producer)
    }

    /// Builds, attests and links a fabric around an existing producer
    /// identity (whose `SK` the enclaves will share). Useful when one
    /// service provider runs several fabrics, and for tests that compare
    /// fabrics without regenerating keys.
    ///
    /// # Errors
    ///
    /// Enclave-launch, attestation, provisioning or handshake failures.
    pub fn build_with_producer(
        topology: Topology,
        config: FabricConfig,
        producer: ProducerCrypto,
    ) -> Result<Self, OverlayError> {
        let mut rng = CryptoRng::from_seed(config.seed);
        let flood = config.propagation == Propagation::Flood;
        let n = topology.routers();
        let mut brokers = Vec::with_capacity(n);
        let mut service_policy = None;
        match config.trust {
            Trust::PreShared => {
                for id in 0..n {
                    let mut broker = Broker::preshared(
                        id,
                        config.seed.wrapping_add(id as u64),
                        config.index,
                        flood,
                    );
                    broker.set_neighbors(topology.neighbors(id));
                    broker.set_partition(config.partition);
                    broker.provision_preshared(&producer);
                    brokers.push(broker);
                }
                for (a, b) in topology.edges() {
                    brokers[a].install_plain_link(b);
                    brokers[b].install_plain_link(a);
                }
            }
            Trust::Attested => {
                // Each broker is its own machine; the attestation service
                // (the producer's trust anchor) knows all their platforms.
                let mut service = AttestationService::new();
                for id in 0..n {
                    let seed = config.seed.wrapping_mul(7919).wrapping_add(id as u64 + 1);
                    let mut broker =
                        Broker::attested(id, seed, config.index, ROUTER_ENCLAVE_CODE, flood)?;
                    broker.set_neighbors(topology.neighbors(id));
                    broker.set_partition(config.partition);
                    let platform = broker.platform().expect("attested broker has a platform");
                    service.trust_platform(platform.attestation_public_key().clone());
                    brokers.push(broker);
                }
                let policy = VerifierPolicy::require_mr_enclave(router_measurement());
                for broker in &mut brokers {
                    broker.configure_trust(service.clone(), policy.clone());
                    broker.provision_attested(&service, &policy, &producer, &mut rng)?;
                }
                service_policy = Some((service, policy));
            }
        }
        if let Some(heartbeats) = config.heartbeats {
            for broker in &mut brokers {
                broker.set_heartbeats(Some(heartbeats));
            }
        }
        if config.telemetry {
            for broker in &mut brokers {
                broker.set_telemetry(true);
            }
        }
        let mut fabric = OverlayFabric {
            topology,
            brokers,
            producer,
            rng,
            next_sub: 0,
            issued: BTreeMap::new(),
            epoch: config.epoch,
            trust: config.trust,
            service: service_policy.as_ref().map(|(s, _)| s.clone()),
            policy: service_policy.map(|(_, p)| p),
            clock: 0,
            edge_frames: BTreeMap::new(),
            dropped_frames: 0,
            edge_drops: BTreeMap::new(),
            drop_plan: BTreeSet::new(),
            events: Vec::new(),
            suspicions: BTreeMap::new(),
            rounds: 0,
            telemetry: config.telemetry,
            next_trace: 1,
            strides: BTreeMap::new(),
        };
        if config.trust == Trust::Attested {
            // One tick round: every edge's lower endpoint initiates; the
            // pump completes all handshakes synchronously.
            fabric.tick_all()?;
            for broker in &fabric.brokers {
                debug_assert_eq!(broker.lifecycle(), Lifecycle::Serving, "bring-up incomplete");
            }
        }
        Ok(fabric)
    }

    /// The broker tree.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The producer whose `SK` the fabric's enclaves share.
    pub fn producer(&self) -> &ProducerCrypto {
        &self.producer
    }

    /// The group-key epoch currently stamped onto publications.
    pub fn epoch(&self) -> KeyEpoch {
        self.epoch
    }

    /// Advances the publication epoch (operator-driven key rotation).
    pub fn set_epoch(&mut self, epoch: KeyEpoch) {
        self.epoch = epoch;
    }

    /// The lifecycle state of router `at`.
    ///
    /// # Panics
    ///
    /// Panics when `at` is out of range.
    pub fn lifecycle(&self, at: usize) -> Lifecycle {
        self.brokers[at].lifecycle()
    }

    /// Checks an injection point against the topology.
    fn check_router(&self, at: usize) -> Result<(), OverlayError> {
        if at >= self.brokers.len() {
            return Err(OverlayError::Topology { reason: "router out of range" });
        }
        Ok(())
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Feeds every broker one timer tick and pumps the fallout.
    fn tick_all(&mut self) -> Result<(), OverlayError> {
        for id in 0..self.brokers.len() {
            if self.brokers[id].lifecycle() == Lifecycle::Crashed {
                continue;
            }
            let now = self.tick();
            let outs = self.brokers[id].step(now, Input::Tick)?;
            self.pump(id, outs)?;
        }
        Ok(())
    }

    /// Dispatches one input to one broker and pumps the resulting frames
    /// breadth-first until the tree is quiescent, collecting local
    /// deliveries along the way.
    fn dispatch(&mut self, at: usize, input: Input) -> Result<Vec<LocalDelivery>, OverlayError> {
        let now = self.tick();
        let outs = self.brokers[at].step(now, input)?;
        self.pump(at, outs)
    }

    /// The scheduler core: frames out of one broker become inputs to the
    /// next; deliveries and events are collected. Frames to crashed
    /// brokers (and frames scheduled for loss injection) are dropped and
    /// counted — the sender finds out the way a real deployment does.
    fn pump(
        &mut self,
        origin: usize,
        outputs: Vec<Output>,
    ) -> Result<Vec<LocalDelivery>, OverlayError> {
        let mut deliveries = Vec::new();
        let mut queue: VecDeque<LinkFrame> = VecDeque::new();
        let absorb = |outs: Vec<Output>,
                      router: usize,
                      queue: &mut VecDeque<LinkFrame>,
                      deliveries: &mut Vec<LocalDelivery>,
                      events: &mut Vec<(usize, LinkEvent)>,
                      suspicions: &mut BTreeMap<usize, BTreeSet<usize>>| {
            for out in outs {
                match out {
                    Output::Frame(frame) => queue.push_back(frame),
                    Output::Delivery(delivery) => deliveries.push(delivery),
                    Output::Event(event) => {
                        // Mirror the liveness accusations into the
                        // fabric's aggregate view. Only silence counts
                        // toward node death; a gap accuses the channel,
                        // not the peer (which provably sent the frame).
                        match &event {
                            LinkEvent::Suspect { link, reason: SuspectReason::Silence } => {
                                suspicions.entry(*link).or_default().insert(router);
                            }
                            LinkEvent::Cleared { link } => {
                                if let Some(accusers) = suspicions.get_mut(link) {
                                    accusers.remove(&router);
                                    if accusers.is_empty() {
                                        suspicions.remove(link);
                                    }
                                }
                            }
                            _ => {}
                        }
                        events.push((router, event));
                    }
                }
            }
        };
        absorb(
            outputs,
            origin,
            &mut queue,
            &mut deliveries,
            &mut self.events,
            &mut self.suspicions,
        );
        while let Some(frame) = queue.pop_front() {
            let edge = (frame.from, frame.to);
            *self.edge_frames.entry(edge).or_default() += 1;
            let doomed = self.brokers[frame.to].lifecycle() == Lifecycle::Crashed
                || self.drop_plan.remove(&edge);
            if doomed {
                self.dropped_frames += 1;
                *self.edge_drops.entry(edge).or_default() += 1;
                continue;
            }
            let now = self.tick();
            let outs = self.brokers[frame.to]
                .step(now, Input::Frame { from: frame.from, bytes: frame.bytes })?;
            absorb(
                outs,
                frame.to,
                &mut queue,
                &mut deliveries,
                &mut self.events,
                &mut self.suspicions,
            );
        }
        Ok(deliveries)
    }

    /// Registers `client`'s subscription at edge router `at` and
    /// propagates it through the tree.
    ///
    /// # Errors
    ///
    /// An out-of-range `at`, a crashed (or otherwise not-serving) edge
    /// broker, or registration/link failures anywhere along the
    /// propagation.
    pub fn subscribe(
        &mut self,
        at: usize,
        client: ClientId,
        spec: &SubscriptionSpec,
    ) -> Result<SubscriptionId, OverlayError> {
        self.check_router(at)?;
        let id = SubscriptionId(self.next_sub);
        self.next_sub += 1;
        let envelope = self
            .producer
            .seal_registration(spec, id, client, &mut self.rng)
            .map_err(OverlayError::Routing)?;
        self.dispatch(at, Input::Subscribe { envelope })?;
        self.issued.insert(id, (at, client));
        Ok(id)
    }

    /// Retires subscription `id`, propagating the removal through the
    /// tree: each broker drops the entry from its index, and on every
    /// link the subscription had been forwarded on, newly *uncovered*
    /// subscriptions are re-forwarded ahead of the removal (Siena's
    /// uncovering rule). Returns whether the subscription was still live —
    /// a second unsubscribe of the same id is an idempotent `Ok(false)`.
    ///
    /// # Errors
    ///
    /// An id this fabric never issued is a clean
    /// [`ScbrError::NotFound`] error; a crashed home broker is a
    /// lifecycle error; link/authentication failures propagate.
    pub fn unsubscribe(&mut self, id: SubscriptionId) -> Result<bool, OverlayError> {
        let &(at, client) = self
            .issued
            .get(&id)
            .ok_or(OverlayError::Routing(ScbrError::NotFound { what: "subscription" }))?;
        let envelope = self
            .producer
            .seal_unregistration(id, client, &mut self.rng)
            .map_err(OverlayError::Routing)?;
        let before = self.events.len();
        self.dispatch(at, Input::Unsubscribe { envelope })?;
        let removed = self.events[before..].iter().any(|(router, event)| {
            *router == at
                && matches!(event, LinkEvent::Unsubscribed { id: rid, removed: true } if *rid == id)
        });
        Ok(removed)
    }

    /// Publishes a batch at router `at`, forwarding it hop by hop, and
    /// returns every edge delivery (sorted by router, client,
    /// publication index). Frames toward crashed brokers are dropped —
    /// their subtree is unreachable until it rejoins.
    ///
    /// # Errors
    ///
    /// An out-of-range `at`, a not-serving injection broker, or
    /// matching/link failures anywhere along the forwarding paths.
    pub fn publish(
        &mut self,
        at: usize,
        publications: &[PublicationSpec],
    ) -> Result<Vec<Delivery>, OverlayError> {
        self.publish_traced(at, publications).map(|(_, deliveries)| deliveries)
    }

    /// [`OverlayFabric::publish`], also returning the batch's trace id.
    /// With telemetry enabled the producer assigns a fresh id (carried
    /// in clear alongside the sealed frames and recorded per hop — read
    /// the hops back via [`OverlayFabric::telemetry`]); with telemetry
    /// off the id is [`TraceId::NONE`].
    ///
    /// # Errors
    ///
    /// As [`OverlayFabric::publish`].
    pub fn publish_traced(
        &mut self,
        at: usize,
        publications: &[PublicationSpec],
    ) -> Result<(TraceId, Vec<Delivery>), OverlayError> {
        self.check_router(at)?;
        let trace = if self.telemetry {
            let trace = TraceId(self.next_trace);
            self.next_trace += 1;
            trace
        } else {
            TraceId::NONE
        };
        let epoch = self.epoch;
        let items: Vec<PublishItem> = publications
            .iter()
            .enumerate()
            .map(|(i, p)| PublishItem {
                header_ct: self.producer.encrypt_header(p, &mut self.rng),
                epoch,
                // The payload is opaque to routers; the fabric tags it
                // with the batch index so tests can identify deliveries.
                payload_ct: (i as u32).to_be_bytes().to_vec(),
            })
            .collect();
        let local = self.dispatch(at, Input::Publish { items, trace })?;
        let mut deliveries: Vec<Delivery> =
            local.iter().map(decode_delivery).collect::<Result<_, _>>()?;
        deliveries.sort_unstable();
        Ok((trace, deliveries))
    }

    // ---- failure and recovery ------------------------------------------

    /// Crashes router `at`: every piece of volatile state is gone, and
    /// until [`OverlayFabric::restart`] completes, frames toward it are
    /// dropped (and counted in [`OverlayFabric::dropped_frames`]).
    ///
    /// # Errors
    ///
    /// An out-of-range `at`.
    pub fn crash(&mut self, at: usize) -> Result<(), OverlayError> {
        self.check_router(at)?;
        self.dispatch(at, Input::Crash)?;
        // A dead broker's standing accusations die with its state.
        self.suspicions.retain(|_, accusers| {
            accusers.remove(&at);
            !accusers.is_empty()
        });
        Ok(())
    }

    /// Restarts crashed router `at` and drives the full rejoin to
    /// completion: unseal + restore, re-attestation (attested mode),
    /// link re-keying with every neighbour, neighbour replay of the live
    /// forwarded sets, and reconciliation of subscriptions removed
    /// during the outage. Returns what the recovery restored and cost.
    ///
    /// # Errors
    ///
    /// A broker that is not crashed, a stale (rolled-back) sealed
    /// record — the broker then *stays crashed* — or any attestation,
    /// handshake or replay failure.
    pub fn restart(&mut self, at: usize) -> Result<RejoinReport, OverlayError> {
        self.check_router(at)?;
        // The scheduler is the liveness oracle: neighbours that are not
        // serving cannot answer a replay right now, so the rejoiner skips
        // them — their own rejoin replays from `at` and reconciles both
        // sides, and (with heartbeats) `at` heals the skipped link the
        // moment it is re-keyed. Adjacent concurrent crashes recover in
        // any order: a replay request toward a still-rejoining neighbour
        // parks there and drains when that neighbour starts serving.
        let dead_links: Vec<usize> = self
            .topology
            .neighbors(at)
            .iter()
            .copied()
            .filter(|&n| self.brokers[n].lifecycle() != Lifecycle::Serving)
            .collect();
        self.restart_with_liveness_view(at, &dead_links)
    }

    /// [`OverlayFabric::restart`] with an explicit (possibly wrong)
    /// liveness view instead of the scheduler-oracle one: `dead_links`
    /// is what the operator *believes* is down. Neighbours named there
    /// are skipped at rejoin — a stale entry naming a live neighbour
    /// leaves that link un-rekeyed until the heartbeat timers heal it
    /// (probe handshake + pull replay), which is exactly what the
    /// stale-view regression tests pin.
    ///
    /// # Errors
    ///
    /// As [`OverlayFabric::restart`].
    pub fn restart_with_liveness_view(
        &mut self,
        at: usize,
        dead_links: &[usize],
    ) -> Result<RejoinReport, OverlayError> {
        self.check_router(at)?;
        let frames_before: u64 = self.edge_frames.values().sum();
        let events_before = self.events.len();
        self.begin_restart(at, dead_links)?;
        // One tick initiates every incident handshake (attested) or
        // replay request (pre-shared); the pump completes the rejoin
        // synchronously. The extra iterations cover multi-round heal
        // chains (e.g. a neighbour pulling its own replay back).
        for _ in 0..4 {
            if self.brokers[at].lifecycle() == Lifecycle::Serving {
                break;
            }
            let now = self.tick();
            let outs = self.brokers[at].step(now, Input::Tick)?;
            self.pump(at, outs)?;
        }
        if self.brokers[at].lifecycle() != Lifecycle::Serving {
            // Leave a cleanly restartable state rather than a broker
            // wedged mid-rejoin: re-crash it (the sealed record on the
            // host disk is untouched) so the caller can retry.
            self.dispatch(at, Input::Crash)?;
            return Err(OverlayError::Lifecycle {
                reason: "rejoin did not complete; broker re-crashed for a clean retry",
            });
        }
        let mut restored = 0;
        let mut replayed = 0;
        let mut dropped_stale = 0;
        for (router, event) in &self.events[events_before..] {
            if *router != at {
                continue;
            }
            match event {
                LinkEvent::RejoinStarted { restored: r } => restored = *r,
                LinkEvent::Rejoined { replayed: r, dropped_stale: d, .. } => {
                    replayed = *r;
                    dropped_stale = *d;
                }
                _ => {}
            }
        }
        let recovery_frames = self.edge_frames.values().sum::<u64>() - frames_before;
        Ok(RejoinReport { restored, replayed, dropped_stale, recovery_frames })
    }

    /// Dispatches the `Restart` input and restores host-side state
    /// (plain links, provisioning) *without* driving the rejoin to
    /// completion — subsequent timer ticks carry it forward. Splitting
    /// this off is what lets the detection loop hold several adjacent
    /// brokers mid-rejoin at once.
    fn begin_restart(&mut self, at: usize, dead_links: &[usize]) -> Result<(), OverlayError> {
        self.dispatch(at, Input::Restart { dead_links: dead_links.to_vec() })?;
        match self.trust {
            Trust::PreShared => {
                // Plain links are stateless: reinstall them everywhere
                // (frames toward a still-crashed neighbour drop at the
                // scheduler); `dead_links` only governs replay skipping.
                let neighbors = self.topology.neighbors(at).to_vec();
                for neighbor in neighbors {
                    self.brokers[at].install_plain_link(neighbor);
                    self.brokers[neighbor].install_plain_link(at);
                }
                let producer = self.producer.clone();
                self.brokers[at].provision_preshared(&producer);
            }
            Trust::Attested => {
                let (Some(service), Some(policy)) = (self.service.clone(), self.policy.clone())
                else {
                    return Err(OverlayError::Link { reason: "fabric lost its trust anchors" });
                };
                let producer = self.producer.clone();
                self.brokers[at].provision_attested(&service, &policy, &producer, &mut self.rng)?;
            }
        }
        Ok(())
    }

    // ---- timer-driven failure detection --------------------------------

    /// Runs one detection round: every broker (respecting its tick
    /// stride) receives a timer tick — driving heartbeats, suspicion
    /// timeouts, probes and replay kick-offs — and the fabric then
    /// converts quorum suspicion into automatic fence-and-restart. A
    /// broker is fenced once a **majority of its currently-serving
    /// neighbours** accuse it of silence; the fence (`Crash` observed)
    /// is idempotent for a genuinely dead broker, and the restart is
    /// incremental — an adjacent broker may be fenced in the same round,
    /// and both rejoins proceed concurrently across subsequent rounds
    /// (replay requests toward a still-rejoining neighbour park there
    /// and drain when it starts serving).
    ///
    /// Returns the fence-and-restarts performed this round.
    ///
    /// # Errors
    ///
    /// Tick, pump or restart failures.
    pub fn tick_round(&mut self) -> Result<Vec<AutoRejoin>, OverlayError> {
        self.rounds += 1;
        for id in 0..self.brokers.len() {
            if self.brokers[id].lifecycle() == Lifecycle::Crashed {
                continue;
            }
            let stride = self.strides.get(&id).copied().unwrap_or(1).max(1);
            if !self.rounds.is_multiple_of(stride) {
                continue;
            }
            let now = self.tick();
            let outs = self.brokers[id].step(now, Input::Tick)?;
            self.pump(id, outs)?;
        }
        let mut rejoins = Vec::new();
        let candidates: Vec<usize> = self.suspicions.keys().copied().collect();
        for suspect in candidates {
            if self.brokers[suspect].lifecycle() == Lifecycle::Rejoining {
                continue; // restart already in flight
            }
            let serving_accusers = self
                .suspicions
                .get(&suspect)
                .map_or(0, |a| a.iter().filter(|&&n| self.is_serving(n)).count());
            let live_neighbors =
                self.topology.neighbors(suspect).iter().filter(|&&n| self.is_serving(n)).count();
            // Majority of the *live* neighbourhood: a single partitioned
            // edge cannot fence a well-connected broker, but a broker
            // whose only live neighbour accuses it is fenced — that is
            // what unwedges cascades of adjacent crashes.
            let quorum = live_neighbors / 2 + 1;
            if live_neighbors == 0 || serving_accusers < quorum {
                continue;
            }
            // Fence: observe the crash (idempotent if the broker really
            // is dead) so the restart starts from a clean slate, then
            // begin the rejoin. Dead-link view for the rejoiner: only
            // neighbours that are *crashed right now* are skipped — a
            // rejoining neighbour will serve the parked replay later.
            self.crash(suspect)?;
            let dead_links: Vec<usize> = self
                .topology
                .neighbors(suspect)
                .iter()
                .copied()
                .filter(|&n| self.brokers[n].lifecycle() == Lifecycle::Crashed)
                .collect();
            self.begin_restart(suspect, &dead_links)?;
            self.suspicions.remove(&suspect);
            rejoins.push(AutoRejoin { router: suspect, round: self.rounds });
        }
        Ok(rejoins)
    }

    /// Runs detection rounds until every broker has settled (serving,
    /// no replay in flight, no believed-dead link, no unhealed gap) and
    /// no suspicion stands, returning every automatic fence-and-restart
    /// performed. This is the zero-operator recovery path: crash any set
    /// of brokers — adjacent ones included — silently, call this, and
    /// the fabric detects and repairs the damage on its own.
    ///
    /// # Errors
    ///
    /// [`OverlayError::Detection`] when the fabric has not settled
    /// within `max_rounds` rounds; tick/pump/restart failures propagate.
    pub fn run_detection(&mut self, max_rounds: u64) -> Result<Vec<AutoRejoin>, OverlayError> {
        let mut rejoins = Vec::new();
        for _ in 0..max_rounds {
            if self.settled() {
                return Ok(rejoins);
            }
            rejoins.extend(self.tick_round()?);
        }
        if self.settled() {
            return Ok(rejoins);
        }
        Err(OverlayError::Detection { reason: "fabric did not settle within the round budget" })
    }

    /// True when every broker is settled (serving with no recovery work
    /// outstanding) and no silence accusation stands.
    pub fn settled(&self) -> bool {
        self.brokers.iter().all(Broker::settled) && self.suspicions.is_empty()
    }

    /// Sets broker `at`'s tick stride: it receives a timer tick only
    /// every `stride`-th detection round (models a slow-but-alive host —
    /// its heartbeats are delayed, not lost; with `stride · interval`
    /// below `suspect_after` its neighbours never accuse it).
    pub fn set_tick_stride(&mut self, at: usize, stride: u64) {
        self.strides.insert(at, stride.max(1));
    }

    /// Standing silence accusations: suspect → accusing neighbours.
    pub fn suspicions(&self) -> &BTreeMap<usize, BTreeSet<usize>> {
        &self.suspicions
    }

    /// Detection rounds run so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    fn is_serving(&self, at: usize) -> bool {
        self.brokers[at].lifecycle() == Lifecycle::Serving
    }

    /// The sealed recovery record on router `at`'s host disk (the disk
    /// is untrusted — reading it reveals only sealed bytes).
    ///
    /// # Panics
    ///
    /// Panics when `at` is out of range.
    pub fn sealed_record(&self, at: usize) -> Option<Vec<u8>> {
        self.brokers[at].sealed_record().map(<[u8]>::to_vec)
    }

    /// Overwrites router `at`'s host-disk recovery record (models a
    /// malicious host serving a stale-but-authentic sealed file; the
    /// monotonic counter catches it at restart).
    ///
    /// # Panics
    ///
    /// Panics when `at` is out of range.
    pub fn set_sealed_record(&mut self, at: usize, record: Vec<u8>) {
        self.brokers[at].set_sealed_record(record);
    }

    /// Schedules the next frame on the directed edge `from → to` to be
    /// lost in transit (test hook: downstream of the loss, the receiver
    /// observes a sequence gap — the liveness signal).
    pub fn drop_next_frame(&mut self, from: usize, to: usize) {
        self.drop_plan.insert((from, to));
    }

    /// Frames dropped so far (crashed destinations + injected losses).
    pub fn dropped_frames(&self) -> u64 {
        self.dropped_frames
    }

    /// Cumulative frame counts per directed edge.
    pub fn edge_frames(&self) -> &BTreeMap<(usize, usize), u64> {
        &self.edge_frames
    }

    /// Cumulative dropped-frame counts per directed edge (crashed
    /// destinations + injected losses; sums to
    /// [`OverlayFabric::dropped_frames`]).
    pub fn edge_drops(&self) -> &BTreeMap<(usize, usize), u64> {
        &self.edge_drops
    }

    /// Drains the typed events surfaced by brokers since the last call.
    pub fn take_events(&mut self) -> Vec<(usize, LinkEvent)> {
        std::mem::take(&mut self.events)
    }

    // ---- aggregate inspection ------------------------------------------

    /// Per-broker counters, in router order.
    pub fn broker_stats(&self) -> Vec<BrokerStats> {
        self.brokers.iter().map(|b| b.stats()).collect()
    }

    /// Sum of enclave crossings across brokers since the last reset.
    pub fn total_ecalls(&self) -> u64 {
        self.brokers.iter().map(|b| b.stats().ecalls).sum()
    }

    /// Slowest broker's virtual clock since the last reset (the overlay's
    /// critical path for concurrently-running brokers).
    pub fn max_elapsed_ns(&self) -> f64 {
        self.brokers.iter().map(|b| b.stats().elapsed_ns).fold(0.0, f64::max)
    }

    /// Total live forwarding-table rows across links (upstream interest
    /// currently recorded; shrinks again as subscriptions are removed).
    pub fn total_forwarded(&self) -> u64 {
        self.brokers.iter().map(|b| b.stats().forwarded).sum()
    }

    /// Total covering-pruned subscription-forwards (traffic avoided).
    pub fn total_pruned(&self) -> u64 {
        self.brokers.iter().map(|b| b.stats().pruned).sum()
    }

    /// Total subscription-forwards ever sent on links (cumulative
    /// propagation traffic, including uncovering re-forwards).
    pub fn total_forwarded_cumulative(&self) -> u64 {
        self.brokers.iter().map(|b| b.stats().forwarded_total).sum()
    }

    /// Total forwarding-table removals (cumulative).
    pub fn total_removed(&self) -> u64 {
        self.brokers.iter().map(|b| b.stats().removed).sum()
    }

    /// Total uncovering promotions (cumulative re-forwards caused by
    /// removals).
    pub fn total_uncovered(&self) -> u64 {
        self.brokers.iter().map(|b| b.stats().uncovered).sum()
    }

    /// Total sequence-number gaps observed across brokers (cumulative).
    pub fn total_gaps(&self) -> u64 {
        self.brokers.iter().map(|b| b.stats().gaps).sum()
    }

    /// Total heartbeat frames emitted across brokers (cumulative).
    pub fn total_heartbeats(&self) -> u64 {
        self.brokers.iter().map(|b| b.stats().heartbeats).sum()
    }

    /// Total index entries across brokers (edge + link-interface copies).
    pub fn total_index_entries(&self) -> usize {
        self.brokers.iter().map(|b| b.subscriptions()).sum()
    }

    /// Edge-occupancy skew across the matcher slices of broker `at`
    /// (1.0 when unpartitioned, balanced or empty).
    pub fn occupancy_skew(&self, at: usize) -> f64 {
        self.brokers[at].occupancy_skew()
    }

    /// Forces one synchronous rebalancing run on broker `at` (the
    /// serving tick runs the same loop automatically once the skew
    /// exceeds the configured threshold).
    ///
    /// # Errors
    ///
    /// Lifecycle (broker not serving) or migration failures.
    pub fn rebalance(&mut self, at: usize) -> Result<RebalanceReport, OverlayError> {
        self.brokers[at].rebalance_now()
    }

    /// Total cross-slice migrations across brokers (volatile — each
    /// broker's counter restarts at zero on crash).
    pub fn total_migrations(&self) -> u64 {
        self.brokers.iter().map(|b| b.migrations()).sum()
    }

    /// Resets every broker's counters (between measurement phases).
    pub fn reset_counters(&self) {
        for broker in &self.brokers {
            broker.reset_counters();
        }
    }

    // ---- telemetry ------------------------------------------------------

    /// Whether the fabric was built with telemetry
    /// ([`FabricConfig::with_telemetry`]).
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry
    }

    /// The fabric's full telemetry view: per-broker counter registries
    /// (broker, memory-simulator and per-link forwarding counters under
    /// stable prefixes), per-broker stage latency summaries, fabric-level
    /// aggregates (frame/drop ledgers, event-label counts, cross-broker
    /// totals), and every hop record drained from the brokers' flight
    /// recorders.
    ///
    /// Draining is destructive for hop records (each record is reported
    /// exactly once — the in-enclave rings empty through their costed
    /// ocall) but counters and standing events are left in place.
    pub fn telemetry(&mut self) -> TelemetrySnapshot {
        let mut fabric_registry = MetricsRegistry::new();
        let mut brokers = Vec::with_capacity(self.brokers.len());
        let mut hops = Vec::new();
        for (id, broker) in self.brokers.iter_mut().enumerate() {
            let stats = broker.stats();
            let mut registry = MetricsRegistry::new();
            registry.absorb("broker", &stats.snapshot());
            registry.absorb("mem", &broker.mem_stats().snapshot());
            for (neighbor, counters) in broker.link_snapshots() {
                registry.absorb(&format!("link.{neighbor}"), &counters);
            }
            if broker.slice_count() > 1 {
                // The closed rebalancing loop's inputs and outputs, in
                // the cluster module's per-slice schema plus broker-level
                // partition gauges (skew in milli-units — the registry is
                // integral).
                for stats in broker.slice_stats() {
                    registry.absorb(&format!("slice.{}", stats.slice), &stats.snapshot());
                }
                registry.set("partition.slices", broker.slice_count() as u64);
                registry.set("partition.migrations", broker.migrations());
                registry
                    .set("partition.skew_milli", (broker.occupancy_skew() * 1000.0).round() as u64);
            }
            registry.set("trace.dropped", broker.trace_drops());
            fabric_registry.absorb("total", &stats.snapshot());
            hops.extend(broker.drain_trace());
            brokers.push(BrokerTelemetry {
                broker: id as u64,
                counters: registry.snapshot(),
                stages: broker.stage_summaries(),
            });
        }
        hops.sort_by_key(|h| (h.tick, h.broker));
        fabric_registry.set("fabric.dropped_frames", self.dropped_frames);
        fabric_registry.set("fabric.edges", self.edge_frames.len() as u64);
        fabric_registry.set("fabric.rounds", self.rounds);
        for (_, event) in &self.events {
            fabric_registry.add(&format!("events.{}", event.label()), 1);
        }
        TelemetrySnapshot { fabric: fabric_registry.snapshot(), brokers, hops }
    }
}

/// Decodes the batch index the fabric tagged into a delivered payload.
fn decode_delivery(local: &LocalDelivery) -> Result<Delivery, OverlayError> {
    let bytes: [u8; 4] = local
        .item
        .payload_ct
        .as_slice()
        .try_into()
        .map_err(|_| OverlayError::Link { reason: "unexpected payload tag" })?;
    Ok(Delivery {
        router: local.router,
        client: local.client,
        publication: u32::from_be_bytes(bytes) as usize,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preshared_line_routes_end_to_end() {
        let mut fabric =
            OverlayFabric::build(Topology::line(3), FabricConfig::preshared(7)).unwrap();
        fabric.subscribe(0, ClientId(1), &SubscriptionSpec::new().gt("price", 10.0)).unwrap();
        fabric.subscribe(2, ClientId(2), &SubscriptionSpec::new().eq("symbol", "HAL")).unwrap();
        let deliveries = fabric
            .publish(
                1,
                &[
                    PublicationSpec::new().attr("price", 20.0).attr("symbol", "HAL"),
                    PublicationSpec::new().attr("price", 5.0).attr("symbol", "IBM"),
                ],
            )
            .unwrap();
        assert_eq!(
            deliveries,
            vec![
                Delivery { router: 0, client: ClientId(1), publication: 0 },
                Delivery { router: 2, client: ClientId(2), publication: 0 },
            ]
        );
    }

    #[test]
    fn covering_prunes_propagation_traffic() {
        let mut fabric =
            OverlayFabric::build(Topology::line(4), FabricConfig::preshared(8)).unwrap();
        // A broad subscription at router 0 travels all 3 links; narrower
        // ones behind it are pruned at the first hop.
        fabric.subscribe(0, ClientId(1), &SubscriptionSpec::new().gt("price", 0.0)).unwrap();
        assert_eq!(fabric.total_forwarded(), 3);
        fabric.subscribe(0, ClientId(2), &SubscriptionSpec::new().gt("price", 10.0)).unwrap();
        fabric.subscribe(0, ClientId(3), &SubscriptionSpec::new().gt("price", 20.0)).unwrap();
        assert_eq!(fabric.total_forwarded(), 3, "covered subscriptions never leave router 0");
        assert_eq!(fabric.total_pruned(), 2);
        // Index copies: every sub at router 0, one interface copy per hop
        // for the broad one only.
        assert_eq!(fabric.total_index_entries(), 3 + 3);
        // Deliveries are still exact.
        let deliveries = fabric.publish(3, &[PublicationSpec::new().attr("price", 15.0)]).unwrap();
        assert_eq!(
            deliveries,
            vec![
                Delivery { router: 0, client: ClientId(1), publication: 0 },
                Delivery { router: 0, client: ClientId(2), publication: 0 },
            ]
        );
    }

    #[test]
    fn flood_mode_forwards_everything() {
        let mut fabric = OverlayFabric::build(
            Topology::line(3),
            FabricConfig { propagation: Propagation::Flood, ..FabricConfig::preshared(9) },
        )
        .unwrap();
        fabric.subscribe(0, ClientId(1), &SubscriptionSpec::new().gt("price", 0.0)).unwrap();
        fabric.subscribe(0, ClientId(2), &SubscriptionSpec::new().gt("price", 10.0)).unwrap();
        assert_eq!(fabric.total_index_entries(), 2 * 3, "every broker holds every subscription");
    }

    #[test]
    fn unsubscribe_uncovers_across_hops_and_drains_state() {
        use scbr::ids::SubscriptionId;
        let mut fabric =
            OverlayFabric::build(Topology::line(3), FabricConfig::preshared(12)).unwrap();
        let broad =
            fabric.subscribe(0, ClientId(1), &SubscriptionSpec::new().gt("price", 0.0)).unwrap();
        let narrow =
            fabric.subscribe(0, ClientId(2), &SubscriptionSpec::new().gt("price", 10.0)).unwrap();
        assert_eq!(fabric.total_forwarded(), 2, "only the broad one crossed the two links");
        assert_eq!(fabric.total_pruned(), 1, "the narrow one is pruned once, at its edge");

        // Removing the broad subscription must re-forward the narrow one
        // along the whole chain before withdrawing the broad interest.
        assert!(fabric.unsubscribe(broad).unwrap());
        assert_eq!(fabric.total_uncovered(), 2, "one promotion per link of the chain");
        assert_eq!(fabric.total_forwarded(), 2, "narrow rows replaced broad rows");
        // Delivery reflects only the narrow interest now.
        let deliveries = fabric
            .publish(
                2,
                &[
                    PublicationSpec::new().attr("price", 5.0),
                    PublicationSpec::new().attr("price", 15.0),
                ],
            )
            .unwrap();
        assert_eq!(deliveries, vec![Delivery { router: 0, client: ClientId(2), publication: 1 }]);

        // Removing the last subscription drains every broker and table.
        assert!(fabric.unsubscribe(narrow).unwrap());
        assert_eq!(fabric.total_index_entries(), 0, "no leaked index entries");
        assert_eq!(fabric.total_forwarded(), 0, "no leaked forwarding rows");
        assert!(fabric
            .publish(0, &[PublicationSpec::new().attr("price", 99.0)])
            .unwrap()
            .is_empty());

        // Idempotent double-unsubscribe; unknown ids are clean errors.
        assert!(!fabric.unsubscribe(broad).unwrap());
        assert!(matches!(
            fabric.unsubscribe(SubscriptionId(999)),
            Err(OverlayError::Routing(scbr::ScbrError::NotFound { .. }))
        ));
    }

    #[test]
    fn out_of_range_routers_are_an_error_not_a_panic() {
        let mut fabric =
            OverlayFabric::build(Topology::line(2), FabricConfig::preshared(11)).unwrap();
        assert!(matches!(
            fabric.subscribe(5, ClientId(1), &SubscriptionSpec::new()),
            Err(OverlayError::Topology { reason: "router out of range" })
        ));
        assert!(matches!(
            fabric.publish(2, &[PublicationSpec::new().attr("x", 1.0)]),
            Err(OverlayError::Topology { reason: "router out of range" })
        ));
    }

    #[test]
    fn publications_do_not_echo_to_their_origin() {
        let mut fabric =
            OverlayFabric::build(Topology::line(2), FabricConfig::preshared(10)).unwrap();
        fabric.subscribe(0, ClientId(1), &SubscriptionSpec::new().gt("x", 0.0)).unwrap();
        // Published at the subscriber's own router: delivered locally,
        // no frame crosses the link and comes back.
        let deliveries = fabric.publish(0, &[PublicationSpec::new().attr("x", 1.0)]).unwrap();
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].router, 0);
    }

    #[test]
    fn epoch_comes_from_config_and_advances() {
        let mut fabric = OverlayFabric::build(
            Topology::line(2),
            FabricConfig { epoch: KeyEpoch(3), ..FabricConfig::preshared(13) },
        )
        .unwrap();
        assert_eq!(fabric.epoch(), KeyEpoch(3));
        fabric.set_epoch(KeyEpoch(4));
        assert_eq!(fabric.epoch(), KeyEpoch(4));
    }

    #[test]
    fn crash_rejoin_round_trip_preshared() {
        let mut fabric =
            OverlayFabric::build(Topology::line(3), FabricConfig::preshared(14)).unwrap();
        let keep =
            fabric.subscribe(0, ClientId(1), &SubscriptionSpec::new().gt("price", 0.0)).unwrap();
        fabric.subscribe(2, ClientId(2), &SubscriptionSpec::new().gt("price", 5.0)).unwrap();
        let entries_before = fabric.total_index_entries();
        let rows_before = fabric.total_forwarded();

        fabric.crash(1).unwrap();
        assert_eq!(fabric.lifecycle(1), Lifecycle::Crashed);
        // Local edge ops at the crashed broker are lifecycle errors.
        assert!(matches!(
            fabric.subscribe(1, ClientId(9), &SubscriptionSpec::new()),
            Err(OverlayError::Lifecycle { .. })
        ));
        // Publications still work, but the far side is unreachable.
        let during = fabric.publish(0, &[PublicationSpec::new().attr("price", 7.0)]).unwrap();
        assert_eq!(during, vec![Delivery { router: 0, client: ClientId(1), publication: 0 }]);
        assert!(fabric.dropped_frames() > 0, "the frame toward the crashed broker was dropped");

        let report = fabric.restart(1).unwrap();
        assert_eq!(fabric.lifecycle(1), Lifecycle::Serving);
        assert_eq!(report.dropped_stale, 0);
        assert_eq!(fabric.total_index_entries(), entries_before, "state fully recovered");
        assert_eq!(fabric.total_forwarded(), rows_before);
        // Delivery is exact again, both directions.
        let after = fabric.publish(0, &[PublicationSpec::new().attr("price", 7.0)]).unwrap();
        assert_eq!(
            after,
            vec![
                Delivery { router: 0, client: ClientId(1), publication: 0 },
                Delivery { router: 2, client: ClientId(2), publication: 0 },
            ]
        );
        // And the fabric still drains clean.
        assert!(fabric.unsubscribe(keep).unwrap());
    }

    #[test]
    fn traced_publication_records_every_hop_on_attested_fabric() {
        let mut fabric =
            OverlayFabric::build(Topology::line(3), FabricConfig::attested(31).with_telemetry())
                .unwrap();
        assert!(fabric.telemetry_enabled());
        fabric.subscribe(2, ClientId(1), &SubscriptionSpec::new().gt("price", 0.0)).unwrap();
        let (trace, deliveries) =
            fabric.publish_traced(0, &[PublicationSpec::new().attr("price", 9.0)]).unwrap();
        assert!(trace.is_some());
        assert_eq!(deliveries.len(), 1);
        let snap = fabric.telemetry();
        // The batch crossed 0 → 1 → 2: one hop record per broker, in
        // arrival order, and only the terminal broker matched anything.
        let path = snap.trace_path(trace);
        assert_eq!(path.iter().map(|h| h.broker).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(path.iter().map(|h| h.matched_bucket).collect::<Vec<_>>(), vec![0, 0, 1]);
        for hop in &path {
            assert!(hop.arrival_ns <= hop.match_ns && hop.match_ns <= hop.forward_ns);
        }
        // Per-broker registries carry the absorbed counter namespaces.
        assert_eq!(snap.brokers.len(), 3);
        for broker in &snap.brokers {
            assert!(broker.counters.get("broker.ecalls").unwrap() > 0);
            assert!(broker.counters.get("mem.ecalls").is_some());
            assert_eq!(broker.counters.get("trace.dropped"), Some(0));
            assert!(!broker.stages.is_empty(), "stage histograms populated");
        }
        // Fabric-level aggregates fold the same exports across brokers.
        assert_eq!(
            snap.fabric.get("total.ecalls").unwrap(),
            snap.brokers.iter().map(|b| b.counters.get("broker.ecalls").unwrap()).sum::<u64>()
        );
        assert!(snap.fabric.get("events.subscribed").unwrap() >= 1);
        // Draining is destructive: a second snapshot has no hops.
        assert!(fabric.telemetry().trace_path(trace).is_empty());
    }

    #[test]
    fn telemetry_off_publishes_untraced_with_no_records() {
        let mut fabric =
            OverlayFabric::build(Topology::line(2), FabricConfig::preshared(32)).unwrap();
        fabric.subscribe(0, ClientId(1), &SubscriptionSpec::new().gt("x", 0.0)).unwrap();
        let (trace, deliveries) =
            fabric.publish_traced(1, &[PublicationSpec::new().attr("x", 1.0)]).unwrap();
        assert_eq!(trace, TraceId::NONE);
        assert_eq!(deliveries.len(), 1);
        let snap = fabric.telemetry();
        assert!(snap.hops.is_empty());
        assert!(snap.brokers.iter().all(|b| b.stages.is_empty()));
    }

    #[test]
    fn telemetry_survives_crash_but_flight_records_do_not() {
        let mut fabric = OverlayFabric::build(
            Topology::line(2),
            FabricConfig { telemetry: true, ..FabricConfig::preshared(33) },
        )
        .unwrap();
        fabric.subscribe(0, ClientId(1), &SubscriptionSpec::new().gt("x", 0.0)).unwrap();
        let (before, _) =
            fabric.publish_traced(1, &[PublicationSpec::new().attr("x", 1.0)]).unwrap();
        fabric.crash(1).unwrap();
        fabric.restart(1).unwrap();
        // Telemetry is host configuration and is re-applied after the
        // rejoin, but the un-drained flight record at broker 1 died with
        // the crash (volatile by design). Plain links carry no frame
        // metadata, so the trace never reached broker 0 either.
        let (after, _) =
            fabric.publish_traced(1, &[PublicationSpec::new().attr("x", 2.0)]).unwrap();
        assert!(after.is_some() && after != before);
        let snap = fabric.telemetry();
        assert!(snap.trace_path(before).is_empty(), "pre-crash record was volatile");
        let path = snap.trace_path(after);
        assert_eq!(path.len(), 1, "plain links drop the trace id; only the origin records");
        assert_eq!(path[0].broker, 1);
    }
}
