//! The overlay fabric: wiring, attestation and traffic orchestration for
//! a whole broker tree.
//!
//! [`OverlayFabric`] owns one [`Broker`] per router of a [`Topology`] and
//! drives the deployment end to end:
//!
//! 1. **Bootstrap** — in [`Trust::Attested`] mode every broker runs on its
//!    own simulated SGX machine; the producer provisions `SK` into each
//!    enclave via remote attestation, and every tree edge performs the
//!    mutual-quote handshake of [`sgx_sim::link`], after which all frames
//!    on that edge travel through sealed channels
//!    ([`scbr_net::SecureLink`]).
//! 2. **Subscription propagation** — a subscription enters at its edge
//!    broker and flows up the tree, covering-pruned per link
//!    ([`crate::forwarding::ForwardingTable`]).
//! 3. **Publication forwarding** — a publication batch enters at any
//!    broker; each hop decrypts and matches the whole batch in single
//!    enclave crossings and forwards it only on links with matching
//!    interest, delivering to edge clients along the way (reverse-path,
//!    loop-free on the tree).
//!
//! The fabric processes frames breadth-first, so traffic order is
//! deterministic for a given seed — what the equivalence proptests and
//! the `overlay` bench rely on.

use crate::broker::{Broker, BrokerStats, LinkFrame, LocalDelivery, Origin, DEMO_EPOCH};
use crate::error::OverlayError;
use crate::topology::Topology;
use scbr::ids::{ClientId, SubscriptionId};
use scbr::index::IndexKind;
use scbr::protocol::keys::ProducerCrypto;
use scbr::protocol::messages::PublishItem;
use scbr::{PublicationSpec, ScbrError, SubscriptionSpec};
use scbr_crypto::rng::CryptoRng;
use sgx_sim::attest::{AttestationService, VerifierPolicy};
use std::collections::{BTreeMap, VecDeque};

/// The measured content of the genuine overlay routing enclave. A broker
/// built from different code has a different `MRENCLAVE` and is refused
/// by every honest peer's link policy.
pub const ROUTER_ENCLAVE_CODE: &[u8] = b"scbr overlay routing engine v1";

/// The `MRENCLAVE` all genuine overlay routers share.
pub fn router_measurement() -> sgx_sim::enclave::Measurement {
    crate::broker::router_builder(ROUTER_ENCLAVE_CODE).measurement()
}

/// How subscriptions propagate through the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Propagation {
    /// Forward a subscription on a link only when nothing already
    /// forwarded there covers it (the real mode).
    CoveringPruned,
    /// Forward every subscription on every link (the equivalence oracle).
    Flood,
}

/// How brokers and links authenticate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trust {
    /// Per-broker SGX platforms, SK via remote attestation, links keyed
    /// by mutual-quote handshakes and sealed.
    Attested,
    /// Keys installed directly, links in the clear (fast functional
    /// testing; no security claims).
    PreShared,
}

/// Fabric construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct FabricConfig {
    /// Seed for all deterministic key material and workload encryption.
    pub seed: u64,
    /// Index implementation each broker runs.
    pub index: IndexKind,
    /// Subscription-propagation mode.
    pub propagation: Propagation,
    /// Authentication mode.
    pub trust: Trust,
}

impl FabricConfig {
    /// The default production-shaped configuration: attested brokers,
    /// covering-pruned propagation, poset index.
    pub fn attested(seed: u64) -> Self {
        FabricConfig {
            seed,
            index: IndexKind::Poset,
            propagation: Propagation::CoveringPruned,
            trust: Trust::Attested,
        }
    }

    /// Fast functional-test configuration (no attestation, no sealing).
    pub fn preshared(seed: u64) -> Self {
        FabricConfig { trust: Trust::PreShared, ..FabricConfig::attested(seed) }
    }
}

/// One delivered publication: which edge client received which
/// publication of a [`OverlayFabric::publish`] call, at which router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Delivery {
    /// The broker that delivered.
    pub router: usize,
    /// The receiving edge client.
    pub client: ClientId,
    /// Index of the publication within the published batch.
    pub publication: usize,
}

/// A running overlay of attested brokers.
pub struct OverlayFabric {
    topology: Topology,
    brokers: Vec<Broker>,
    producer: ProducerCrypto,
    rng: CryptoRng,
    next_sub: u64,
    /// Every subscription ever issued: id → (edge router, client). Kept
    /// across removal so a double-unsubscribe is recognised (idempotent)
    /// while a never-issued id is a clean error.
    issued: BTreeMap<SubscriptionId, (usize, ClientId)>,
}

impl std::fmt::Debug for OverlayFabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OverlayFabric")
            .field("routers", &self.topology.routers())
            .field("subscriptions", &self.next_sub)
            .finish()
    }
}

impl OverlayFabric {
    /// Builds, attests and links a fabric over `topology`, generating a
    /// fresh producer identity from the config seed.
    ///
    /// # Errors
    ///
    /// Enclave-launch, attestation, provisioning or handshake failures.
    pub fn build(topology: Topology, config: FabricConfig) -> Result<Self, OverlayError> {
        let mut rng = CryptoRng::from_seed(config.seed);
        let producer = ProducerCrypto::generate(512, &mut rng).map_err(OverlayError::Routing)?;
        Self::build_with_producer(topology, config, producer)
    }

    /// Builds, attests and links a fabric around an existing producer
    /// identity (whose `SK` the enclaves will share). Useful when one
    /// service provider runs several fabrics, and for tests that compare
    /// fabrics without regenerating keys.
    ///
    /// # Errors
    ///
    /// Enclave-launch, attestation, provisioning or handshake failures.
    pub fn build_with_producer(
        topology: Topology,
        config: FabricConfig,
        producer: ProducerCrypto,
    ) -> Result<Self, OverlayError> {
        let mut rng = CryptoRng::from_seed(config.seed);
        let flood = config.propagation == Propagation::Flood;
        let n = topology.routers();
        let mut brokers = Vec::with_capacity(n);
        match config.trust {
            Trust::PreShared => {
                for id in 0..n {
                    let mut broker = Broker::preshared(
                        id,
                        config.seed.wrapping_add(id as u64),
                        config.index,
                        flood,
                    );
                    broker.set_neighbors(topology.neighbors(id));
                    broker.provision_preshared(&producer);
                    brokers.push(broker);
                }
                for (a, b) in topology.edges() {
                    brokers[a].install_plain_link(b);
                    brokers[b].install_plain_link(a);
                }
            }
            Trust::Attested => {
                // Each broker is its own machine; the attestation service
                // (the producer's trust anchor) knows all their platforms.
                let mut service = AttestationService::new();
                for id in 0..n {
                    let seed = config.seed.wrapping_mul(7919).wrapping_add(id as u64 + 1);
                    let mut broker =
                        Broker::attested(id, seed, config.index, ROUTER_ENCLAVE_CODE, flood)?;
                    broker.set_neighbors(topology.neighbors(id));
                    let platform = broker.platform().expect("attested broker has a platform");
                    service.trust_platform(platform.attestation_public_key().clone());
                    brokers.push(broker);
                }
                let policy = VerifierPolicy::require_mr_enclave(router_measurement());
                for broker in &mut brokers {
                    broker.provision_attested(&service, &policy, &producer, &mut rng)?;
                }
                for (a, b) in topology.edges() {
                    let (left, right) = brokers.split_at_mut(b);
                    establish_link(&mut left[a], &mut right[0], &service, &policy)?;
                }
            }
        }
        Ok(OverlayFabric { topology, brokers, producer, rng, next_sub: 0, issued: BTreeMap::new() })
    }

    /// The broker tree.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The producer whose `SK` the fabric's enclaves share.
    pub fn producer(&self) -> &ProducerCrypto {
        &self.producer
    }

    /// Checks an injection point against the topology.
    fn check_router(&self, at: usize) -> Result<(), OverlayError> {
        if at >= self.brokers.len() {
            return Err(OverlayError::Topology { reason: "router out of range" });
        }
        Ok(())
    }

    /// Registers `client`'s subscription at edge router `at` and
    /// propagates it through the tree.
    ///
    /// # Errors
    ///
    /// An out-of-range `at`, or registration/link failures anywhere along
    /// the propagation.
    pub fn subscribe(
        &mut self,
        at: usize,
        client: ClientId,
        spec: &SubscriptionSpec,
    ) -> Result<SubscriptionId, OverlayError> {
        self.check_router(at)?;
        let id = SubscriptionId(self.next_sub);
        self.next_sub += 1;
        let envelope = self
            .producer
            .seal_registration(spec, id, client, &mut self.rng)
            .map_err(OverlayError::Routing)?;
        let (_, frames) = self.brokers[at].handle_subscription(&envelope, Origin::Local)?;
        self.issued.insert(id, (at, client));
        self.pump(frames)?;
        Ok(id)
    }

    /// Retires subscription `id`, propagating the removal through the
    /// tree: each broker drops the entry from its index, and on every
    /// link the subscription had been forwarded on, newly *uncovered*
    /// subscriptions are re-forwarded ahead of the removal (Siena's
    /// uncovering rule). Returns whether the subscription was still live —
    /// a second unsubscribe of the same id is an idempotent `Ok(false)`.
    ///
    /// # Errors
    ///
    /// An id this fabric never issued is a clean
    /// [`ScbrError::NotFound`] error; link/authentication failures
    /// propagate.
    pub fn unsubscribe(&mut self, id: SubscriptionId) -> Result<bool, OverlayError> {
        let &(at, client) = self
            .issued
            .get(&id)
            .ok_or(OverlayError::Routing(ScbrError::NotFound { what: "subscription" }))?;
        let envelope = self
            .producer
            .seal_unregistration(id, client, &mut self.rng)
            .map_err(OverlayError::Routing)?;
        let (_, removed, frames) = self.brokers[at].handle_unsubscribe(&envelope, Origin::Local)?;
        self.pump(frames)?;
        Ok(removed)
    }

    /// Publishes a batch at router `at`, forwarding it hop by hop, and
    /// returns every edge delivery (sorted by router, client,
    /// publication index).
    ///
    /// # Errors
    ///
    /// An out-of-range `at`, or matching/link failures anywhere along the
    /// forwarding paths.
    pub fn publish(
        &mut self,
        at: usize,
        publications: &[PublicationSpec],
    ) -> Result<Vec<Delivery>, OverlayError> {
        self.check_router(at)?;
        let items: Vec<PublishItem> = publications
            .iter()
            .enumerate()
            .map(|(i, p)| PublishItem {
                header_ct: self.producer.encrypt_header(p, &mut self.rng),
                epoch: DEMO_EPOCH,
                // The payload is opaque to routers; the fabric tags it
                // with the batch index so tests can identify deliveries.
                payload_ct: (i as u32).to_be_bytes().to_vec(),
            })
            .collect();
        let (local, frames) = self.brokers[at].handle_publish(&items, Origin::Local)?;
        let mut deliveries: Vec<Delivery> =
            local.iter().map(decode_delivery).collect::<Result<_, _>>()?;
        let mut queue: VecDeque<LinkFrame> = frames.into();
        while let Some(frame) = queue.pop_front() {
            let (local, more) = self.brokers[frame.to].receive(frame.from, &frame.bytes)?;
            for delivery in &local {
                deliveries.push(decode_delivery(delivery)?);
            }
            queue.extend(more);
        }
        deliveries.sort_unstable();
        Ok(deliveries)
    }

    /// Drives queued subscription frames until the tree is quiescent.
    fn pump(&mut self, frames: Vec<LinkFrame>) -> Result<(), OverlayError> {
        let mut queue: VecDeque<LinkFrame> = frames.into();
        while let Some(frame) = queue.pop_front() {
            let (_, more) = self.brokers[frame.to].receive(frame.from, &frame.bytes)?;
            queue.extend(more);
        }
        Ok(())
    }

    /// Per-broker counters, in router order.
    pub fn broker_stats(&self) -> Vec<BrokerStats> {
        self.brokers.iter().map(|b| b.stats()).collect()
    }

    /// Sum of enclave crossings across brokers since the last reset.
    pub fn total_ecalls(&self) -> u64 {
        self.brokers.iter().map(|b| b.stats().ecalls).sum()
    }

    /// Slowest broker's virtual clock since the last reset (the overlay's
    /// critical path for concurrently-running brokers).
    pub fn max_elapsed_ns(&self) -> f64 {
        self.brokers.iter().map(|b| b.stats().elapsed_ns).fold(0.0, f64::max)
    }

    /// Total live forwarding-table rows across links (upstream interest
    /// currently recorded; shrinks again as subscriptions are removed).
    pub fn total_forwarded(&self) -> u64 {
        self.brokers.iter().map(|b| b.stats().forwarded).sum()
    }

    /// Total covering-pruned subscription-forwards (traffic avoided).
    pub fn total_pruned(&self) -> u64 {
        self.brokers.iter().map(|b| b.stats().pruned).sum()
    }

    /// Total subscription-forwards ever sent on links (cumulative
    /// propagation traffic, including uncovering re-forwards).
    pub fn total_forwarded_cumulative(&self) -> u64 {
        self.brokers.iter().map(|b| b.stats().forwarded_total).sum()
    }

    /// Total forwarding-table removals (cumulative).
    pub fn total_removed(&self) -> u64 {
        self.brokers.iter().map(|b| b.stats().removed).sum()
    }

    /// Total uncovering promotions (cumulative re-forwards caused by
    /// removals).
    pub fn total_uncovered(&self) -> u64 {
        self.brokers.iter().map(|b| b.stats().uncovered).sum()
    }

    /// Total index entries across brokers (edge + link-interface copies).
    pub fn total_index_entries(&self) -> usize {
        self.brokers.iter().map(|b| b.subscriptions()).sum()
    }

    /// Resets every broker's counters (between measurement phases).
    pub fn reset_counters(&self) {
        for broker in &self.brokers {
            broker.reset_counters();
        }
    }
}

/// Runs the four-step mutual-attestation handshake between two brokers
/// and installs the sealed channels on both ends.
///
/// # Errors
///
/// Any quote, policy or unwrap failure — a broker with an unexpected
/// measurement or untrusted platform never gets a link.
pub fn establish_link(
    a: &mut Broker,
    b: &mut Broker,
    service: &AttestationService,
    policy: &VerifierPolicy,
) -> Result<(), OverlayError> {
    let (hello_wire, init_state) = a.link_hello()?;
    let (accept_wire, resp_state) = b.link_accept(&hello_wire, service, policy)?;
    let (finish_wire, key_a) = a.link_finish(init_state, &accept_wire, service, policy)?;
    let key_b = b.link_complete(resp_state, &finish_wire)?;
    a.install_sealed_link(b.id(), &key_a);
    b.install_sealed_link(a.id(), &key_b);
    Ok(())
}

/// Decodes the batch index the fabric tagged into a delivered payload.
fn decode_delivery(local: &LocalDelivery) -> Result<Delivery, OverlayError> {
    let bytes: [u8; 4] = local
        .item
        .payload_ct
        .as_slice()
        .try_into()
        .map_err(|_| OverlayError::Link { reason: "unexpected payload tag" })?;
    Ok(Delivery {
        router: local.router,
        client: local.client,
        publication: u32::from_be_bytes(bytes) as usize,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preshared_line_routes_end_to_end() {
        let mut fabric =
            OverlayFabric::build(Topology::line(3), FabricConfig::preshared(7)).unwrap();
        fabric.subscribe(0, ClientId(1), &SubscriptionSpec::new().gt("price", 10.0)).unwrap();
        fabric.subscribe(2, ClientId(2), &SubscriptionSpec::new().eq("symbol", "HAL")).unwrap();
        let deliveries = fabric
            .publish(
                1,
                &[
                    PublicationSpec::new().attr("price", 20.0).attr("symbol", "HAL"),
                    PublicationSpec::new().attr("price", 5.0).attr("symbol", "IBM"),
                ],
            )
            .unwrap();
        assert_eq!(
            deliveries,
            vec![
                Delivery { router: 0, client: ClientId(1), publication: 0 },
                Delivery { router: 2, client: ClientId(2), publication: 0 },
            ]
        );
    }

    #[test]
    fn covering_prunes_propagation_traffic() {
        let mut fabric =
            OverlayFabric::build(Topology::line(4), FabricConfig::preshared(8)).unwrap();
        // A broad subscription at router 0 travels all 3 links; narrower
        // ones behind it are pruned at the first hop.
        fabric.subscribe(0, ClientId(1), &SubscriptionSpec::new().gt("price", 0.0)).unwrap();
        assert_eq!(fabric.total_forwarded(), 3);
        fabric.subscribe(0, ClientId(2), &SubscriptionSpec::new().gt("price", 10.0)).unwrap();
        fabric.subscribe(0, ClientId(3), &SubscriptionSpec::new().gt("price", 20.0)).unwrap();
        assert_eq!(fabric.total_forwarded(), 3, "covered subscriptions never leave router 0");
        assert_eq!(fabric.total_pruned(), 2);
        // Index copies: every sub at router 0, one interface copy per hop
        // for the broad one only.
        assert_eq!(fabric.total_index_entries(), 3 + 3);
        // Deliveries are still exact.
        let deliveries = fabric.publish(3, &[PublicationSpec::new().attr("price", 15.0)]).unwrap();
        assert_eq!(
            deliveries,
            vec![
                Delivery { router: 0, client: ClientId(1), publication: 0 },
                Delivery { router: 0, client: ClientId(2), publication: 0 },
            ]
        );
    }

    #[test]
    fn flood_mode_forwards_everything() {
        let mut fabric = OverlayFabric::build(
            Topology::line(3),
            FabricConfig { propagation: Propagation::Flood, ..FabricConfig::preshared(9) },
        )
        .unwrap();
        fabric.subscribe(0, ClientId(1), &SubscriptionSpec::new().gt("price", 0.0)).unwrap();
        fabric.subscribe(0, ClientId(2), &SubscriptionSpec::new().gt("price", 10.0)).unwrap();
        assert_eq!(fabric.total_index_entries(), 2 * 3, "every broker holds every subscription");
    }

    #[test]
    fn unsubscribe_uncovers_across_hops_and_drains_state() {
        use scbr::ids::SubscriptionId;
        let mut fabric =
            OverlayFabric::build(Topology::line(3), FabricConfig::preshared(12)).unwrap();
        let broad =
            fabric.subscribe(0, ClientId(1), &SubscriptionSpec::new().gt("price", 0.0)).unwrap();
        let narrow =
            fabric.subscribe(0, ClientId(2), &SubscriptionSpec::new().gt("price", 10.0)).unwrap();
        assert_eq!(fabric.total_forwarded(), 2, "only the broad one crossed the two links");
        assert_eq!(fabric.total_pruned(), 1, "the narrow one is pruned once, at its edge");

        // Removing the broad subscription must re-forward the narrow one
        // along the whole chain before withdrawing the broad interest.
        assert!(fabric.unsubscribe(broad).unwrap());
        assert_eq!(fabric.total_uncovered(), 2, "one promotion per link of the chain");
        assert_eq!(fabric.total_forwarded(), 2, "narrow rows replaced broad rows");
        // Delivery reflects only the narrow interest now.
        let deliveries = fabric
            .publish(
                2,
                &[
                    PublicationSpec::new().attr("price", 5.0),
                    PublicationSpec::new().attr("price", 15.0),
                ],
            )
            .unwrap();
        assert_eq!(deliveries, vec![Delivery { router: 0, client: ClientId(2), publication: 1 }]);

        // Removing the last subscription drains every broker and table.
        assert!(fabric.unsubscribe(narrow).unwrap());
        assert_eq!(fabric.total_index_entries(), 0, "no leaked index entries");
        assert_eq!(fabric.total_forwarded(), 0, "no leaked forwarding rows");
        assert!(fabric
            .publish(0, &[PublicationSpec::new().attr("price", 99.0)])
            .unwrap()
            .is_empty());

        // Idempotent double-unsubscribe; unknown ids are clean errors.
        assert!(!fabric.unsubscribe(broad).unwrap());
        assert!(matches!(
            fabric.unsubscribe(SubscriptionId(999)),
            Err(OverlayError::Routing(scbr::ScbrError::NotFound { .. }))
        ));
    }

    #[test]
    fn out_of_range_routers_are_an_error_not_a_panic() {
        let mut fabric =
            OverlayFabric::build(Topology::line(2), FabricConfig::preshared(11)).unwrap();
        assert!(matches!(
            fabric.subscribe(5, ClientId(1), &SubscriptionSpec::new()),
            Err(OverlayError::Topology { reason: "router out of range" })
        ));
        assert!(matches!(
            fabric.publish(2, &[PublicationSpec::new().attr("x", 1.0)]),
            Err(OverlayError::Topology { reason: "router out of range" })
        ));
    }

    #[test]
    fn publications_do_not_echo_to_their_origin() {
        let mut fabric =
            OverlayFabric::build(Topology::line(2), FabricConfig::preshared(10)).unwrap();
        fabric.subscribe(0, ClientId(1), &SubscriptionSpec::new().gt("x", 0.0)).unwrap();
        // Published at the subscriber's own router: delivered locally,
        // no frame crosses the link and comes back.
        let deliveries = fabric.publish(0, &[PublicationSpec::new().attr("x", 1.0)]).unwrap();
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].router, 0);
    }
}
