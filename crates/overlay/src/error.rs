//! Error type for overlay operations.

use scbr::ScbrError;
use scbr_net::NetError;
use sgx_sim::SgxError;
use std::error::Error;
use std::fmt;

/// Errors raised by the overlay subsystem.
#[derive(Debug)]
#[non_exhaustive]
pub enum OverlayError {
    /// The broker graph is not a tree (or refers to unknown routers).
    Topology {
        /// What was wrong with the graph.
        reason: &'static str,
    },
    /// A link handshake message arrived out of protocol order or a frame
    /// arrived on a link that was never established.
    Link {
        /// What went wrong.
        reason: &'static str,
    },
    /// An input was fed to a broker whose lifecycle state cannot accept
    /// it (e.g. traffic for a crashed broker, `Restart` while serving).
    Lifecycle {
        /// What went wrong.
        reason: &'static str,
    },
    /// The timer-driven detection loop could not settle the fabric
    /// within its round budget (a rejoin wedged, or losses outpaced
    /// recovery).
    Detection {
        /// What went wrong.
        reason: &'static str,
    },
    /// A routing-layer failure (registration, matching, codec).
    Routing(ScbrError),
    /// An attestation or enclave failure (includes refused link peers).
    Sgx(SgxError),
    /// A transport-layer failure (includes sealed-frame authentication).
    Net(NetError),
}

impl OverlayError {
    /// Stable, machine-readable kind label — the key telemetry and the
    /// fabric's drop ledger aggregate error counts under. These strings
    /// are part of the observability surface: new variants may add
    /// labels, but existing ones must not change.
    pub fn label(&self) -> &'static str {
        match self {
            OverlayError::Topology { .. } => "topology",
            OverlayError::Link { .. } => "link",
            OverlayError::Lifecycle { .. } => "lifecycle",
            OverlayError::Detection { .. } => "detection",
            OverlayError::Routing(_) => "routing",
            OverlayError::Sgx(_) => "sgx",
            OverlayError::Net(_) => "net",
        }
    }
}

impl fmt::Display for OverlayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OverlayError::Topology { reason } => write!(f, "invalid topology: {reason}"),
            OverlayError::Link { reason } => write!(f, "link error: {reason}"),
            OverlayError::Lifecycle { reason } => write!(f, "lifecycle error: {reason}"),
            OverlayError::Detection { reason } => write!(f, "detection error: {reason}"),
            OverlayError::Routing(e) => write!(f, "routing error: {e}"),
            OverlayError::Sgx(e) => write!(f, "sgx error: {e}"),
            OverlayError::Net(e) => write!(f, "net error: {e}"),
        }
    }
}

impl Error for OverlayError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            OverlayError::Routing(e) => Some(e),
            OverlayError::Sgx(e) => Some(e),
            OverlayError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ScbrError> for OverlayError {
    fn from(e: ScbrError) -> Self {
        OverlayError::Routing(e)
    }
}

impl From<SgxError> for OverlayError {
    fn from(e: SgxError) -> Self {
        OverlayError::Sgx(e)
    }
}

impl From<NetError> for OverlayError {
    fn from(e: NetError) -> Self {
        OverlayError::Net(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(OverlayError::Topology { reason: "x" }.label(), "topology");
        assert_eq!(OverlayError::Link { reason: "x" }.label(), "link");
        assert_eq!(OverlayError::Lifecycle { reason: "x" }.label(), "lifecycle");
        assert_eq!(OverlayError::Detection { reason: "x" }.label(), "detection");
        assert_eq!(OverlayError::Routing(ScbrError::NotFound { what: "s" }).label(), "routing");
        assert_eq!(OverlayError::Net(NetError::Disconnected).label(), "net");
    }

    #[test]
    fn display_and_source() {
        let t = OverlayError::Topology { reason: "cycle" };
        assert!(t.to_string().contains("cycle"));
        assert!(t.source().is_none());
        let l = OverlayError::Lifecycle { reason: "crashed" };
        assert!(l.to_string().contains("crashed"));
        assert!(l.source().is_none());
        let r: OverlayError = ScbrError::MissingKeys { which: "SK" }.into();
        assert!(r.to_string().contains("SK"));
        assert!(r.source().is_some());
        let s: OverlayError = SgxError::AttestationFailed { reason: "mr" }.into();
        assert!(s.source().is_some());
        let n: OverlayError = NetError::Disconnected.into();
        assert!(n.source().is_some());
    }
}
