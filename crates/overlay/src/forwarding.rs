//! Per-link covering-pruned forwarding tables.
//!
//! A router forwards a subscription up a link only when no subscription
//! already forwarded on that link **covers** it (every publication the new
//! subscription matches, the old one matches too — the partial order the
//! poset index is built on, `CompiledSubscription::covers`). Covered
//! subscriptions are pruned: the upstream router's interest is already
//! broad enough to send every relevant publication back down, and the
//! local index delivers from there. Over skewed workloads (many narrow
//! subscriptions under a few broad ones) this collapses the propagation
//! traffic and the upstream routers' index sizes — the same effect
//! covering has *inside* the poset index, lifted to the network.
//!
//! Removal is the mirror image (Siena's *uncovering* rule): dropping a
//! forwarded entry may leave previously-pruned subscriptions uncovered,
//! and the broker must then promote them into the table (and forward them
//! upstream) to keep the link's recorded interest complete. The table
//! tracks the churn with monotone counters so the invariant
//! `rows == forwarded_total − removed` is checkable from outside.
//!
//! The table lives inside the broker's enclave: entries are plaintext
//! compiled subscriptions and must never cross the trust boundary.

use scbr::attr::AttrId;
use scbr::ids::SubscriptionId;
use scbr::predicate::ConstraintSet;
use scbr::CompiledSubscription;
use std::collections::HashMap;

/// Covering-candidate bucket of one forwarded row, derived from its first
/// (minimum-id) constraint — the same seeding rule as the poset index's
/// root directory. A row can only cover subscriptions that constrain the
/// row's first attribute at least as tightly, so `covered()` probes only
/// the buckets compatible with the queried subscription instead of
/// scanning the whole table.
// lint: allow(SL02, covering bucket key - no cryptographic material)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum CoverKey {
    /// Unconstrained row: covers everything.
    Top,
    /// First constraint is a string equality with this hash; only rows
    /// with the identical equality can cover (string sets never nest).
    Eq(AttrId, u64),
    /// First constraint is a range over this attribute.
    Range(AttrId),
}

fn cover_key(sub: &CompiledSubscription) -> CoverKey {
    match sub.constraints().first() {
        None => CoverKey::Top,
        Some((attr, ConstraintSet::StrEq(h))) => CoverKey::Eq(*attr, *h),
        Some((attr, ConstraintSet::Range { .. })) => CoverKey::Range(*attr),
    }
}

/// The subscriptions a broker has forwarded on one link, plus churn
/// counters.
#[derive(Debug, Default)]
pub struct ForwardingTable {
    entries: Vec<(SubscriptionId, CompiledSubscription)>,
    /// Position of each live id in `entries` — O(1) lookups and removals.
    pos: HashMap<SubscriptionId, usize>,
    /// Covering candidates bucketed by [`CoverKey`].
    buckets: HashMap<CoverKey, Vec<SubscriptionId>>,
    /// Covering-pruned (withheld) subscriptions, cumulative.
    pruned: u64,
    /// Subscriptions ever recorded as forwarded, cumulative.
    forwarded_total: u64,
    /// Entries removed again (unsubscription), cumulative.
    removed: u64,
    /// Records that were *uncovering promotions* — previously-pruned
    /// subscriptions forwarded because a removal exposed them. A subset
    /// of `forwarded_total`.
    uncovered: u64,
}

impl ForwardingTable {
    /// An empty table.
    pub fn new() -> Self {
        ForwardingTable::default()
    }

    fn any_covers(&self, ids: &[SubscriptionId], sub: &CompiledSubscription) -> bool {
        ids.iter().any(|id| {
            let &p = self.pos.get(id).expect("bucketed id is live");
            self.entries[p].1.covers(sub)
        })
    }

    /// Is `sub` covered by a subscription already forwarded on this link?
    ///
    /// Sub-linear: only the [`CoverKey`] buckets compatible with `sub`'s
    /// own constraints are probed (unconstrained rows, the identical
    /// string equality per attribute, and ranges over `sub`'s attributes);
    /// every other row provably cannot cover `sub`.
    pub fn covered(&self, sub: &CompiledSubscription) -> bool {
        if let Some(ids) = self.buckets.get(&CoverKey::Top) {
            if self.any_covers(ids, sub) {
                return true;
            }
        }
        for (attr, cs) in sub.constraints() {
            let key = match cs {
                ConstraintSet::StrEq(h) => CoverKey::Eq(*attr, *h),
                ConstraintSet::Range { .. } => CoverKey::Range(*attr),
            };
            if let Some(ids) = self.buckets.get(&key) {
                if self.any_covers(ids, sub) {
                    return true;
                }
            }
        }
        false
    }

    /// Is `id` currently recorded as forwarded on this link?
    pub fn contains(&self, id: SubscriptionId) -> bool {
        self.pos.contains_key(&id)
    }

    /// The compiled subscription recorded for `id`, if any.
    pub fn get(&self, id: SubscriptionId) -> Option<&CompiledSubscription> {
        self.pos.get(&id).map(|&p| &self.entries[p].1)
    }

    /// The ids currently recorded as forwarded, in table order.
    pub fn row_ids(&self) -> Vec<SubscriptionId> {
        self.entries.iter().map(|(id, _)| *id).collect()
    }

    /// The cumulative churn counters, in the order
    /// `(pruned, forwarded_total, removed, uncovered)` — what a broker
    /// seals alongside the rows so the counter ledger survives a restart.
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        (self.pruned, self.forwarded_total, self.removed, self.uncovered)
    }

    /// Uniform telemetry export: every counter (plus the live row count)
    /// as `(name, value)` pairs for a
    /// [`scbr_telemetry::MetricsRegistry`] to absorb under a per-link
    /// prefix.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("forwarded", self.entries.len() as u64),
            ("pruned", self.pruned),
            ("forwarded_total", self.forwarded_total),
            ("removed", self.removed),
            ("uncovered", self.uncovered),
        ]
    }

    /// Rebuilds a table from sealed recovery state: the live rows plus
    /// the counters captured by [`ForwardingTable::counters`]. The record
    /// may come from an untrusted host (pre-shared mode stores it
    /// unsealed), so the ledger invariants are *validated*, not assumed:
    /// `rows == forwarded_total − removed` (without underflow) and
    /// `uncovered ≤ forwarded_total`. Returns `None` on a corrupt
    /// ledger.
    pub fn rebuild(
        entries: Vec<(SubscriptionId, CompiledSubscription)>,
        counters: (u64, u64, u64, u64),
    ) -> Option<Self> {
        let (pruned, forwarded_total, removed, uncovered) = counters;
        if forwarded_total.checked_sub(removed)? != entries.len() as u64 {
            return None;
        }
        if uncovered > forwarded_total {
            return None;
        }
        let mut pos = HashMap::with_capacity(entries.len());
        let mut buckets: HashMap<CoverKey, Vec<SubscriptionId>> = HashMap::new();
        for (p, (id, sub)) in entries.iter().enumerate() {
            pos.insert(*id, p);
            buckets.entry(cover_key(sub)).or_default().push(*id);
        }
        Some(ForwardingTable { entries, pos, buckets, pruned, forwarded_total, removed, uncovered })
    }

    fn bucket_remove(&mut self, key: CoverKey, id: SubscriptionId) {
        if let Some(ids) = self.buckets.get_mut(&key) {
            if let Some(i) = ids.iter().position(|e| *e == id) {
                ids.swap_remove(i);
            }
        }
    }

    /// Records a subscription as forwarded on this link. Idempotent per
    /// [`SubscriptionId`]: re-recording an id replaces its entry instead
    /// of stacking a stale duplicate row, and returns `false` so the
    /// caller knows no new forward is due.
    pub fn record(&mut self, id: SubscriptionId, sub: CompiledSubscription) -> bool {
        if let Some(&p) = self.pos.get(&id) {
            let old_key = cover_key(&self.entries[p].1);
            let new_key = cover_key(&sub);
            if old_key != new_key {
                self.bucket_remove(old_key, id);
                self.buckets.entry(new_key).or_default().push(id);
            }
            self.entries[p].1 = sub;
            return false;
        }
        self.pos.insert(id, self.entries.len());
        self.buckets.entry(cover_key(&sub)).or_default().push(id);
        self.entries.push((id, sub));
        self.forwarded_total += 1;
        true
    }

    /// Records an uncovering promotion: a previously-pruned subscription
    /// forwarded because a removal exposed it.
    pub fn record_uncovered(&mut self, id: SubscriptionId, sub: CompiledSubscription) -> bool {
        let fresh = self.record(id, sub);
        if fresh {
            self.uncovered += 1;
        }
        fresh
    }

    /// Removes a forwarded entry. Returns whether it was present (a
    /// pruned subscription was never in the table, so removing it is a
    /// no-op and — crucially — generates no upstream traffic).
    pub fn remove(&mut self, id: SubscriptionId) -> bool {
        let Some(p) = self.pos.remove(&id) else {
            return false;
        };
        let (_, sub) = self.entries.swap_remove(p);
        if let Some((moved, _)) = self.entries.get(p) {
            self.pos.insert(*moved, p);
        }
        self.bucket_remove(cover_key(&sub), id);
        self.removed += 1;
        true
    }

    /// Counts one covering-pruned (not forwarded) subscription.
    pub fn note_pruned(&mut self) {
        self.pruned += 1;
    }

    /// Number of subscriptions currently forwarded on this link (live
    /// rows; equals [`ForwardingTable::forwarded_total`] −
    /// [`ForwardingTable::removed`]).
    pub fn forwarded(&self) -> usize {
        self.entries.len()
    }

    /// Number of subscriptions pruned on this link, cumulative.
    pub fn pruned(&self) -> u64 {
        self.pruned
    }

    /// Subscriptions ever recorded as forwarded, cumulative.
    pub fn forwarded_total(&self) -> u64 {
        self.forwarded_total
    }

    /// Entries removed again, cumulative.
    pub fn removed(&self) -> u64 {
        self.removed
    }

    /// Uncovering promotions, cumulative.
    pub fn uncovered(&self) -> u64 {
        self.uncovered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scbr::attr::AttrSchema;
    use scbr::SubscriptionSpec;

    fn compiled(spec: SubscriptionSpec, schema: &AttrSchema) -> CompiledSubscription {
        spec.compile(schema).unwrap()
    }

    #[test]
    fn covering_prunes_and_non_covering_forwards() {
        let schema = AttrSchema::new();
        let broad = compiled(SubscriptionSpec::new().gt("price", 0.0), &schema);
        let narrow = compiled(SubscriptionSpec::new().gt("price", 10.0), &schema);
        let other = compiled(SubscriptionSpec::new().eq("symbol", "HAL"), &schema);

        let mut table = ForwardingTable::new();
        assert!(!table.covered(&broad), "empty table covers nothing");
        table.record(SubscriptionId(1), broad.clone());
        assert!(table.covered(&narrow), "broad covers narrow");
        assert!(table.covered(&broad), "covering is reflexive");
        assert!(!table.covered(&other), "unrelated attribute is not covered");
        table.note_pruned();
        assert_eq!(table.forwarded(), 1);
        assert_eq!(table.pruned(), 1);
    }

    #[test]
    fn narrow_first_does_not_block_broad() {
        let schema = AttrSchema::new();
        let narrow = compiled(SubscriptionSpec::new().between("price", 5.0, 6.0), &schema);
        let broad = compiled(SubscriptionSpec::new().ge("price", 0.0), &schema);
        let mut table = ForwardingTable::new();
        table.record(SubscriptionId(1), narrow);
        assert!(!table.covered(&broad), "the broader subscription must still be forwarded");
    }

    #[test]
    fn record_is_idempotent_per_id() {
        // Regression: `record` used to append unconditionally, so
        // re-registering an id left a stale duplicate row that a single
        // `remove` could not clear.
        let schema = AttrSchema::new();
        let sub = compiled(SubscriptionSpec::new().gt("price", 1.0), &schema);
        let wider = compiled(SubscriptionSpec::new().gt("price", 0.0), &schema);
        let mut table = ForwardingTable::new();
        assert!(table.record(SubscriptionId(1), sub.clone()));
        assert!(!table.record(SubscriptionId(1), sub.clone()), "same id again: no new forward");
        assert_eq!(table.forwarded(), 1, "one row, not two");
        assert_eq!(table.forwarded_total(), 1);
        // Re-recording replaces the stored subscription.
        assert!(!table.record(SubscriptionId(1), wider.clone()));
        assert!(table.covered(&wider));
        // One removal fully clears the id.
        assert!(table.remove(SubscriptionId(1)));
        assert_eq!(table.forwarded(), 0);
        assert!(!table.contains(SubscriptionId(1)));
    }

    #[test]
    fn rebuild_round_trips_rows_and_counters() {
        let schema = AttrSchema::new();
        let a = compiled(SubscriptionSpec::new().gt("price", 0.0), &schema);
        let b = compiled(SubscriptionSpec::new().gt("price", 5.0), &schema);
        let mut table = ForwardingTable::new();
        table.record(SubscriptionId(1), a.clone());
        table.record(SubscriptionId(2), b.clone());
        table.note_pruned();
        table.remove(SubscriptionId(2));
        table.record_uncovered(SubscriptionId(3), b.clone());
        let rows: Vec<_> =
            table.row_ids().iter().map(|id| (*id, table.get(*id).unwrap().clone())).collect();
        let rebuilt = ForwardingTable::rebuild(rows.clone(), table.counters()).unwrap();
        assert_eq!(rebuilt.row_ids(), table.row_ids());
        assert_eq!(rebuilt.counters(), table.counters());
        assert_eq!(rebuilt.forwarded(), table.forwarded());
        assert!(rebuilt.covered(&b), "rebuilt rows still drive covering decisions");
        assert_eq!(rebuilt.get(SubscriptionId(1)), Some(&a));
        assert_eq!(rebuilt.get(SubscriptionId(9)), None);

        // Corrupt ledgers (a hostile host rewriting an unsealed record)
        // are rejected, including underflowing counters.
        assert!(ForwardingTable::rebuild(rows.clone(), (0, 99, 0, 0)).is_none());
        assert!(ForwardingTable::rebuild(rows.clone(), (0, 1, 5, 0)).is_none(), "underflow");
        assert!(ForwardingTable::rebuild(rows, (0, 2, 0, 7)).is_none(), "uncovered > total");
    }

    #[test]
    fn bucketed_covering_agrees_with_a_full_scan() {
        // The bucketed `covered()` must answer exactly like the old
        // linear scan on a mixed population of topic-equality rows, range
        // rows and a re-recorded row whose bucket key changed.
        let schema = AttrSchema::new();
        let mut table = ForwardingTable::new();
        let mut rows: Vec<CompiledSubscription> = Vec::new();
        for i in 0..20u64 {
            let spec = if i % 2 == 0 {
                SubscriptionSpec::new().eq("topic", format!("t{i}").as_str())
            } else {
                SubscriptionSpec::new().ge("priority", i as f64)
            };
            let sub = compiled(spec, &schema);
            table.record(SubscriptionId(i), sub.clone());
            rows.push(sub);
        }
        // Move one id from a topic bucket to a range bucket.
        let moved = compiled(SubscriptionSpec::new().ge("priority", 0.0), &schema);
        table.record(SubscriptionId(0), moved.clone());
        rows[0] = moved;

        let queries = [
            SubscriptionSpec::new().eq("topic", "t2").gt("priority", 5.0),
            SubscriptionSpec::new().eq("topic", "t999"),
            SubscriptionSpec::new().ge("priority", 30.0),
            SubscriptionSpec::new().lt("priority", 2.0),
            SubscriptionSpec::new().eq("other", "x"),
            SubscriptionSpec::new(),
        ];
        for q in queries {
            let q = compiled(q, &schema);
            let naive = rows.iter().any(|fwd| fwd.covers(&q));
            assert_eq!(table.covered(&q), naive, "bucketed covering diverged");
        }
    }

    #[test]
    fn removal_and_counters_stay_consistent() {
        let schema = AttrSchema::new();
        let a = compiled(SubscriptionSpec::new().gt("price", 0.0), &schema);
        let b = compiled(SubscriptionSpec::new().gt("price", 5.0), &schema);
        let mut table = ForwardingTable::new();
        table.record(SubscriptionId(1), a);
        assert!(!table.remove(SubscriptionId(9)), "absent id: no-op");
        assert_eq!(table.removed(), 0);
        assert!(table.remove(SubscriptionId(1)));
        assert!(!table.remove(SubscriptionId(1)), "second removal is a no-op");
        table.record_uncovered(SubscriptionId(2), b);
        assert_eq!(table.forwarded_total(), 2);
        assert_eq!(table.removed(), 1);
        assert_eq!(table.uncovered(), 1);
        assert_eq!(table.forwarded() as u64, table.forwarded_total() - table.removed());
    }
}
