//! Per-link covering-pruned forwarding tables.
//!
//! A router forwards a subscription up a link only when no subscription
//! already forwarded on that link **covers** it (every publication the new
//! subscription matches, the old one matches too — the partial order the
//! poset index is built on, `CompiledSubscription::covers`). Covered
//! subscriptions are pruned: the upstream router's interest is already
//! broad enough to send every relevant publication back down, and the
//! local index delivers from there. Over skewed workloads (many narrow
//! subscriptions under a few broad ones) this collapses the propagation
//! traffic and the upstream routers' index sizes — the same effect
//! covering has *inside* the poset index, lifted to the network.
//!
//! The table lives inside the broker's enclave: entries are plaintext
//! compiled subscriptions and must never cross the trust boundary.

use scbr::ids::SubscriptionId;
use scbr::CompiledSubscription;

/// The subscriptions a broker has forwarded on one link, plus pruning
/// counters.
#[derive(Debug, Default)]
pub struct ForwardingTable {
    entries: Vec<(SubscriptionId, CompiledSubscription)>,
    pruned: u64,
}

impl ForwardingTable {
    /// An empty table.
    pub fn new() -> Self {
        ForwardingTable::default()
    }

    /// Is `sub` covered by a subscription already forwarded on this link?
    pub fn covered(&self, sub: &CompiledSubscription) -> bool {
        self.entries.iter().any(|(_, fwd)| fwd.covers(sub))
    }

    /// Records a subscription as forwarded on this link.
    pub fn record(&mut self, id: SubscriptionId, sub: CompiledSubscription) {
        self.entries.push((id, sub));
    }

    /// Counts one covering-pruned (not forwarded) subscription.
    pub fn note_pruned(&mut self) {
        self.pruned += 1;
    }

    /// Number of subscriptions forwarded on this link.
    pub fn forwarded(&self) -> usize {
        self.entries.len()
    }

    /// Number of subscriptions pruned on this link.
    pub fn pruned(&self) -> u64 {
        self.pruned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scbr::attr::AttrSchema;
    use scbr::SubscriptionSpec;

    fn compiled(spec: SubscriptionSpec, schema: &AttrSchema) -> CompiledSubscription {
        spec.compile(schema).unwrap()
    }

    #[test]
    fn covering_prunes_and_non_covering_forwards() {
        let schema = AttrSchema::new();
        let broad = compiled(SubscriptionSpec::new().gt("price", 0.0), &schema);
        let narrow = compiled(SubscriptionSpec::new().gt("price", 10.0), &schema);
        let other = compiled(SubscriptionSpec::new().eq("symbol", "HAL"), &schema);

        let mut table = ForwardingTable::new();
        assert!(!table.covered(&broad), "empty table covers nothing");
        table.record(SubscriptionId(1), broad.clone());
        assert!(table.covered(&narrow), "broad covers narrow");
        assert!(table.covered(&broad), "covering is reflexive");
        assert!(!table.covered(&other), "unrelated attribute is not covered");
        table.note_pruned();
        assert_eq!(table.forwarded(), 1);
        assert_eq!(table.pruned(), 1);
    }

    #[test]
    fn narrow_first_does_not_block_broad() {
        let schema = AttrSchema::new();
        let narrow = compiled(SubscriptionSpec::new().between("price", 5.0, 6.0), &schema);
        let broad = compiled(SubscriptionSpec::new().ge("price", 0.0), &schema);
        let mut table = ForwardingTable::new();
        table.record(SubscriptionId(1), narrow);
        assert!(!table.covered(&broad), "the broader subscription must still be forwarded");
    }
}
