//! Partitioned matching inside one broker: N engine slices behind the
//! single-matcher API, with a skew-driven migration primitive.
//!
//! The paper's routing enclave is a single matcher; at large scale a hot
//! overlay broker becomes the bottleneck. [`PartitionedMatcher`] shards
//! the broker's subscriptions across `N` [`MatchingEngine`] slices —
//! each with its own arena poset, ASPE gate state and match scratch —
//! while presenting exactly the register/unregister/match surface
//! [`crate::broker::Broker`] already drives:
//!
//! * **Placement** — a fresh subscription id is hash-placed
//!   ([`PartitionedMatcher::home_slice`]); a re-registration or removal
//!   routes to the id's *current* slice through the placement map, so a
//!   migrated subscription is never duplicated by later churn. Learning
//!   the id before picking a slice uses
//!   [`MatchingEngine::peek_registration`] (verify + decrypt + decode
//!   without mutating); with one slice the matcher delegates directly
//!   and the hot path is byte-for-byte the single-engine one.
//! * **Fan-out** — one publication header is matched by every slice via
//!   [`MatchingEngine::match_encrypted_append`] into a shared buffer,
//!   then the combined span is sorted and deduplicated. All slices share
//!   the broker's one [`MemorySim`], so the whole fan-out stays inside
//!   the broker's existing one-ECALL-per-hop crossing and is charged on
//!   the same virtual clock.
//! * **Migration** — [`PartitionedMatcher::migrate`] moves one live
//!   subscription between slices *make-before-break*: register on the
//!   target under the same delivery identity (link interfaces keep their
//!   top-bit-tagged [`ClientId`]s), then unregister from the source. In
//!   the window where both slices hold the id, the fan-out merge
//!   deduplicates the double match — no publication is lost or delivered
//!   twice mid-migration.
//!
//! The skew signal and the closed rebalancing loop live in the broker
//! (which owns the registration envelopes a migration replays); this
//! module provides the mechanism and the per-slice occupancy arithmetic,
//! mirroring `scbr`'s cluster-level [`scbr::cluster::SliceStats`]
//! remedy documentation.

use scbr::cluster::SliceStats;
use scbr::engine::MatchingEngine;
use scbr::ids::{ClientId, SubscriptionId};
use scbr::index::IndexKind;
use scbr::ScbrError;
use scbr_crypto::{RsaPublicKey, SymmetricKey};
use scbr_telemetry::StageSummary;
use sgx_sim::MemorySim;
use std::collections::BTreeMap;

/// How a broker partitions its matcher. Host-side configuration (like
/// the trust anchors): survives crashes, `Copy` so it rides inside
/// [`crate::fabric::FabricConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionConfig {
    /// Matcher slices per broker. `1` (the default) keeps the exact
    /// single-engine hot path — no peek, no fan-out, no merge.
    pub slices: usize,
    /// The `occupancy_skew` (max slice edge-load over mean) above which
    /// the broker's serving-tick rebalancer starts migrating.
    pub skew_threshold: f64,
    /// Subscriptions migrated fullest → emptiest per rebalancing pass.
    pub migration_batch: usize,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig { slices: 1, skew_threshold: 1.5, migration_batch: 8 }
    }
}

impl PartitionConfig {
    /// A partitioned configuration with `slices` slices and the default
    /// skew threshold and migration batch.
    pub fn sliced(slices: usize) -> Self {
        PartitionConfig { slices: slices.max(1), ..PartitionConfig::default() }
    }

    /// Sets the skew threshold the auto-rebalancer reacts to.
    #[must_use]
    pub fn with_skew_threshold(mut self, threshold: f64) -> Self {
        self.skew_threshold = threshold.max(1.0);
        self
    }

    /// Sets the per-pass migration batch size.
    #[must_use]
    pub fn with_migration_batch(mut self, batch: usize) -> Self {
        self.migration_batch = batch.max(1);
        self
    }
}

/// What one rebalancing run did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebalanceReport {
    /// Subscriptions migrated (0 when the skew was already below the
    /// threshold).
    pub migrated: usize,
    /// Fullest → emptiest passes performed.
    pub passes: usize,
    /// `occupancy_skew` before the run.
    pub skew_before: f64,
    /// `occupancy_skew` after the run.
    pub skew_after: f64,
}

/// N matching-engine slices behind the single-matcher API (see the
/// module docs). All slices share one [`MemorySim`]: inside a broker the
/// partition is a *concurrency and cache structure*, not a trust
/// boundary — there is still exactly one enclave, one clock and one
/// crossing ledger.
pub struct PartitionedMatcher {
    slices: Vec<MatchingEngine>,
    /// Current owning slice of every live subscription id. `BTreeMap`
    /// for deterministic migration candidate order.
    placement: BTreeMap<SubscriptionId, usize>,
    /// Subscriptions migrated between slices over the matcher's
    /// lifetime.
    migrations: u64,
}

impl std::fmt::Debug for PartitionedMatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PartitionedMatcher")
            .field("slices", &self.slices.len())
            .field("subscriptions", &self.placement.len())
            .finish()
    }
}

impl PartitionedMatcher {
    /// Builds `slices` engine slices (at least one), all indexing into
    /// `mem`.
    pub fn new(mem: &MemorySim, kind: IndexKind, slices: usize) -> Self {
        let n = slices.max(1);
        PartitionedMatcher {
            slices: (0..n).map(|_| MatchingEngine::new(mem, kind)).collect(),
            placement: BTreeMap::new(),
            migrations: 0,
        }
    }

    /// Number of slices.
    pub fn slice_count(&self) -> usize {
        self.slices.len()
    }

    /// The deterministic hash slice for a fresh id (Fibonacci hashing on
    /// the id bits, so sequential ids spread instead of clustering).
    pub fn home_slice(&self, id: SubscriptionId) -> usize {
        ((id.0.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) % self.slices.len() as u64) as usize
    }

    /// The slice currently holding `id`, if live.
    pub fn slice_of(&self, id: SubscriptionId) -> Option<usize> {
        self.placement.get(&id).copied()
    }

    /// Subscriptions migrated between slices over the matcher's lifetime.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// The shared memory simulator (slice 0's handle; all slices clone
    /// the same one).
    pub fn memory(&self) -> &MemorySim {
        self.slices[0].memory()
    }

    /// Installs `SK` and the producer signature key into every slice.
    pub fn provision_keys(&mut self, sk: SymmetricKey, producer_key: RsaPublicKey) {
        for slice in &mut self.slices {
            slice.provision_keys(sk.clone(), producer_key.clone());
        }
    }

    /// Enables or disables stage-latency telemetry on every slice.
    pub fn set_telemetry(&mut self, on: bool) {
        for slice in &mut self.slices {
            slice.set_telemetry(on);
        }
    }

    /// Per-slice stage summaries, in slice order (one slice's decrypt
    /// and index-match stages after another's).
    pub fn stage_summaries(&self) -> Vec<StageSummary> {
        self.slices.iter().flat_map(MatchingEngine::stage_summaries).collect()
    }

    /// Total live subscriptions across slices (edge + link interfaces).
    pub fn subscriptions(&self) -> usize {
        self.slices.iter().map(|s| s.index().len()).sum()
    }

    /// Registers an envelope on the id's owning slice (current placement
    /// for a live id, hash placement for a fresh one), with an optional
    /// delivery-identity override — the partitioned form of
    /// [`MatchingEngine::register_envelope_as`].
    ///
    /// # Errors
    ///
    /// Signature/decryption failures, malformed bodies, missing keys.
    pub fn register_envelope_as(
        &mut self,
        envelope: &[u8],
        deliver_to: Option<ClientId>,
    ) -> Result<(SubscriptionId, scbr::CompiledSubscription), ScbrError> {
        if self.slices.len() == 1 {
            let out = self.slices[0].register_envelope_as(envelope, deliver_to)?;
            self.placement.insert(out.0, 0);
            return Ok(out);
        }
        // The slice is keyed by the id, which is inside the sealed body:
        // peek (verify + decrypt + decode, no mutation) to learn it, then
        // register for real on the owner.
        let (id, _) = self.slices[0].peek_registration(envelope)?;
        let slice = self.slice_of(id).unwrap_or_else(|| self.home_slice(id));
        let out = self.slices[slice].register_envelope_as(envelope, deliver_to)?;
        self.placement.insert(id, slice);
        Ok(out)
    }

    /// Processes an unregistration envelope against the id's owning
    /// slice. Idempotent like the engine's: an id no slice holds
    /// authenticates normally and reports `existed = false`.
    ///
    /// # Errors
    ///
    /// Signature/decryption failures, malformed bodies, missing keys.
    pub fn unregister_envelope(
        &mut self,
        envelope: &[u8],
    ) -> Result<(SubscriptionId, ClientId, bool), ScbrError> {
        if self.slices.len() == 1 {
            let out = self.slices[0].unregister_envelope(envelope)?;
            if out.2 {
                self.placement.remove(&out.0);
            }
            return Ok(out);
        }
        // The peek authenticates the envelope; the owning slice then
        // drops the id directly (no second decrypt).
        let (id, client) = self.slices[0].peek_unregistration(envelope)?;
        let Some(slice) = self.slice_of(id) else {
            return Ok((id, client, false));
        };
        let existed = self.slices[slice].unregister(id);
        self.placement.remove(&id);
        Ok((id, client, existed))
    }

    /// Unregisters `id` without an envelope (the broker's reconciliation
    /// path).
    pub fn unregister(&mut self, id: SubscriptionId) -> bool {
        let Some(slice) = self.placement.remove(&id) else {
            return false;
        };
        self.slices[slice].unregister(id)
    }

    /// The compiled form and delivery identity of a live id, from its
    /// owning slice (see [`MatchingEngine::compiled_of`]).
    ///
    /// # Errors
    ///
    /// Malformed retained bodies or compilation failures.
    pub fn compiled_of(
        &self,
        id: SubscriptionId,
    ) -> Result<Option<(ClientId, scbr::CompiledSubscription)>, ScbrError> {
        match self.slice_of(id) {
            Some(slice) => self.slices[slice].compiled_of(id),
            None => Ok(None),
        }
    }

    /// The delivery identity a live id is indexed under.
    pub fn delivery_identity(&self, id: SubscriptionId) -> Option<ClientId> {
        self.slices[self.slice_of(id)?].delivery_identity(id)
    }

    /// Decrypts and matches one header across every slice, replacing
    /// `out` with the merged, sorted, deduplicated client set. With one
    /// slice this is exactly [`MatchingEngine::match_encrypted_into`];
    /// with several, each slice appends its span and the merge
    /// deduplicates — which is also what makes the make-before-break
    /// migration window deliver exactly once.
    ///
    /// # Errors
    ///
    /// Decryption or decoding failures, or missing keys; `out` is left
    /// empty on error.
    pub fn match_into(&self, header_ct: &[u8], out: &mut Vec<ClientId>) -> Result<(), ScbrError> {
        if self.slices.len() == 1 {
            return self.slices[0].match_encrypted_into(header_ct, out);
        }
        out.clear();
        for slice in &self.slices {
            if let Err(err) = slice.match_encrypted_append(header_ct, out) {
                out.clear();
                return Err(err);
            }
        }
        out.sort_unstable_by_key(|c| c.0);
        out.dedup();
        Ok(())
    }

    /// Moves a live subscription to slice `to`, make-before-break:
    /// register the envelope on the target under the *same* delivery
    /// identity first, then unregister from the source. A no-op when the
    /// id is not live or already there.
    ///
    /// # Errors
    ///
    /// Envelope authentication/compilation failures (the source slice is
    /// left untouched — the subscription never goes dark).
    pub fn migrate(
        &mut self,
        id: SubscriptionId,
        envelope: &[u8],
        to: usize,
    ) -> Result<bool, ScbrError> {
        let Some(from) = self.slice_of(id) else {
            return Ok(false);
        };
        if from == to || to >= self.slices.len() {
            return Ok(false);
        }
        let identity = self.slices[from].delivery_identity(id);
        self.slices[to].register_envelope_as(envelope, identity)?;
        self.slices[from].unregister(id);
        self.placement.insert(id, to);
        self.migrations += 1;
        Ok(true)
    }

    /// Per-slice edge-client occupancy (link-interface copies excluded —
    /// they are pinned to the broker that owns the link).
    pub fn edge_counts(&self) -> Vec<usize> {
        self.slices.iter().map(MatchingEngine::edge_subscriptions).collect()
    }

    /// Max-over-mean edge occupancy across slices (1.0 = perfectly
    /// balanced or empty) — the same figure
    /// `scbr::cluster::PartitionedRouter::occupancy_skew` reports.
    pub fn occupancy_skew(&self) -> f64 {
        let counts = self.edge_counts();
        let total: usize = counts.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / counts.len() as f64;
        counts.iter().copied().max().unwrap_or(0) as f64 / mean
    }

    /// The fullest and emptiest slices by edge occupancy (ties broken by
    /// slice number, deterministically).
    pub fn extremes(&self) -> (usize, usize) {
        let counts = self.edge_counts();
        let fullest = (0..counts.len()).max_by_key(|&i| (counts[i], usize::MAX - i)).unwrap_or(0);
        let emptiest = (0..counts.len()).min_by_key(|&i| (counts[i], i)).unwrap_or(0);
        (fullest, emptiest)
    }

    /// Up to `limit` edge-subscription ids currently on `slice`, in id
    /// order — the migration candidates (interface copies never move:
    /// they are pinned to the link's broker, and they are excluded from
    /// the skew figure anyway).
    pub fn edge_ids_on(&self, slice: usize, limit: usize) -> Vec<SubscriptionId> {
        self.placement
            .iter()
            .filter(|&(id, s)| {
                *s == slice
                    && self.slices[slice].delivery_identity(*id).is_some_and(|c| !c.is_interface())
            })
            .map(|(id, _)| *id)
            .take(limit)
            .collect()
    }

    /// Per-slice stats in [`SliceStats`] form (the cluster module's
    /// schema, so the same telemetry labels apply). `mem` is the shared
    /// simulator — identical across slices by construction — and
    /// `lifetime_ecalls` is `None`: the slices share the broker's one
    /// call gate, so a per-slice crossing count is not attributable.
    pub fn slice_stats(&self) -> Vec<SliceStats> {
        self.slices
            .iter()
            .enumerate()
            .map(|(slice, engine)| SliceStats {
                slice,
                subscriptions: engine.index().len(),
                edge_subscriptions: engine.edge_subscriptions(),
                nodes: engine.index().node_count(),
                index_bytes: engine.index().logical_bytes(),
                mem: engine.memory().stats(),
                lifetime_ecalls: None,
            })
            .collect()
    }

    /// Serialises every slice's engine snapshot, in slice order. The
    /// per-slice assignment *is* the snapshot layout: each retained body
    /// sits inside its owning slice's section, so a restore rebuilds the
    /// sharding exactly.
    pub fn snapshot_slices(&self) -> Vec<Vec<u8>> {
        self.slices.iter().map(MatchingEngine::snapshot).collect()
    }

    /// Restores slice `slice` from an engine snapshot and records the
    /// placement of every id it holds.
    ///
    /// # Errors
    ///
    /// Malformed snapshots or invalid subscriptions abort the restore.
    pub fn restore_slice(&mut self, slice: usize, snapshot: &[u8]) -> Result<usize, ScbrError> {
        if slice >= self.slices.len() {
            return Err(ScbrError::Codec { context: "recovery slice out of range" });
        }
        let restored = self.slices[slice].restore(snapshot)?;
        // The engine does not enumerate its ids; recover them from the
        // snapshot framing (count, then per entry a delivery tag and the
        // retained body) by asking the slice what it now holds.
        for id in ids_in_snapshot(snapshot)? {
            self.placement.insert(id, slice);
        }
        Ok(restored)
    }
}

/// The subscription ids recorded in an engine snapshot
/// ([`MatchingEngine::snapshot`] framing: count, then per entry a
/// delivery tag and the retained registration body).
fn ids_in_snapshot(snapshot: &[u8]) -> Result<Vec<SubscriptionId>, ScbrError> {
    let mut r = scbr::codec::Reader::new(snapshot);
    let n = r.u32()? as usize;
    let mut ids = Vec::with_capacity(n);
    for _ in 0..n {
        match r.u8()? {
            0 => {}
            1 => {
                r.u64()?;
            }
            _ => return Err(ScbrError::Codec { context: "snapshot delivery tag" }),
        }
        let body = r.bytes()?;
        let (_, id, _) = scbr::codec::decode_registration(&body)?;
        ids.push(id);
    }
    Ok(ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scbr::protocol::keys::ProducerCrypto;
    use scbr::{PublicationSpec, SubscriptionSpec};
    use scbr_crypto::rng::CryptoRng;
    use sgx_sim::{CacheConfig, CostModel};

    fn setup(slices: usize) -> (PartitionedMatcher, ProducerCrypto, CryptoRng) {
        let mut rng = CryptoRng::from_seed(0x70617274);
        let producer = ProducerCrypto::generate(512, &mut rng).unwrap();
        let mem = MemorySim::native(CacheConfig::default(), CostModel::free());
        let mut matcher = PartitionedMatcher::new(&mem, IndexKind::Poset, slices);
        matcher.provision_keys(producer.sk().clone(), producer.public_key().clone());
        (matcher, producer, rng)
    }

    fn register(
        matcher: &mut PartitionedMatcher,
        producer: &ProducerCrypto,
        rng: &mut CryptoRng,
        id: u64,
        spec: &SubscriptionSpec,
    ) -> Vec<u8> {
        let envelope =
            producer.seal_registration(spec, SubscriptionId(id), ClientId(id), rng).unwrap();
        matcher.register_envelope_as(&envelope, None).unwrap();
        envelope
    }

    #[test]
    fn partitioned_matches_like_a_single_engine() {
        let (mut one, producer, mut rng) = setup(1);
        let (mut four, _, _) = setup(4);
        four.provision_keys(producer.sk().clone(), producer.public_key().clone());
        let mut envelopes = Vec::new();
        for i in 0..40u64 {
            let spec = SubscriptionSpec::new().gt("price", (i % 7) as f64);
            let envelope = producer
                .seal_registration(&spec, SubscriptionId(i), ClientId(i), &mut rng)
                .unwrap();
            one.register_envelope_as(&envelope, None).unwrap();
            four.register_envelope_as(&envelope, None).unwrap();
            envelopes.push(envelope);
        }
        assert!(four.edge_counts().iter().all(|&c| c > 0), "hash placement spreads");
        let header = producer.encrypt_header(&PublicationSpec::new().attr("price", 3.5), &mut rng);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        one.match_into(&header, &mut a).unwrap();
        four.match_into(&header, &mut b).unwrap();
        assert_eq!(a, b, "partitioned ≡ single-engine match set");
        assert!(!a.is_empty());
    }

    #[test]
    fn migration_is_make_before_break_and_rechurn_safe() {
        let (mut matcher, producer, mut rng) = setup(3);
        let spec = SubscriptionSpec::new().gt("price", 1.0);
        let envelope = register(&mut matcher, &producer, &mut rng, 7, &spec);
        let from = matcher.slice_of(SubscriptionId(7)).unwrap();
        let to = (from + 1) % 3;
        assert!(matcher.migrate(SubscriptionId(7), &envelope, to).unwrap());
        assert_eq!(matcher.slice_of(SubscriptionId(7)), Some(to));
        assert_eq!(matcher.migrations(), 1);
        let header = producer.encrypt_header(&PublicationSpec::new().attr("price", 2.0), &mut rng);
        let mut out = Vec::new();
        matcher.match_into(&header, &mut out).unwrap();
        assert_eq!(out, vec![ClientId(7)], "delivered exactly once after migration");

        // Later churn routes to the *new* slice, not the hash home.
        let broad = SubscriptionSpec::new().gt("price", 0.0);
        let re =
            producer.seal_registration(&broad, SubscriptionId(7), ClientId(7), &mut rng).unwrap();
        matcher.register_envelope_as(&re, None).unwrap();
        assert_eq!(matcher.slice_of(SubscriptionId(7)), Some(to));
        assert_eq!(matcher.subscriptions(), 1, "re-registration replaced, not duplicated");
        let unreg = producer.seal_unregistration(SubscriptionId(7), ClientId(7), &mut rng).unwrap();
        let (_, _, existed) = matcher.unregister_envelope(&unreg).unwrap();
        assert!(existed);
        assert_eq!(matcher.subscriptions(), 0);
    }

    #[test]
    fn interface_identity_survives_migration() {
        let (mut matcher, producer, mut rng) = setup(2);
        let iface = ClientId(ClientId::INTERFACE_BIT | 3);
        let spec = SubscriptionSpec::new().gt("price", 1.0);
        let envelope =
            producer.seal_registration(&spec, SubscriptionId(1), ClientId(9), &mut rng).unwrap();
        matcher.register_envelope_as(&envelope, Some(iface)).unwrap();
        let from = matcher.slice_of(SubscriptionId(1)).unwrap();
        assert!(matcher.migrate(SubscriptionId(1), &envelope, 1 - from).unwrap());
        assert_eq!(matcher.delivery_identity(SubscriptionId(1)), Some(iface));
        assert_eq!(matcher.edge_counts(), vec![0, 0], "interface copies never count as edge load");
        assert!(matcher.edge_ids_on(1 - from, 8).is_empty(), "interfaces are not candidates");
    }

    #[test]
    fn skew_arithmetic_and_extremes() {
        let (mut matcher, producer, mut rng) = setup(2);
        assert!((matcher.occupancy_skew() - 1.0).abs() < 1e-9, "empty matcher is balanced");
        let mut on0 = 0;
        for i in 0..16u64 {
            let spec = SubscriptionSpec::new().gt("p", i as f64);
            register(&mut matcher, &producer, &mut rng, i, &spec);
            if matcher.slice_of(SubscriptionId(i)) == Some(0) {
                on0 += 1;
            }
        }
        let counts = matcher.edge_counts();
        assert_eq!(counts[0], on0);
        assert_eq!(counts[0] + counts[1], 16);
        let (fullest, emptiest) = matcher.extremes();
        assert!(counts[fullest] >= counts[emptiest]);
        let expected = counts.iter().copied().max().unwrap() as f64 / 8.0;
        assert!((matcher.occupancy_skew() - expected).abs() < 1e-9);
    }

    #[test]
    fn snapshot_restore_preserves_the_sharding() {
        let (mut matcher, producer, mut rng) = setup(3);
        let mut placed = BTreeMap::new();
        for i in 0..30u64 {
            let spec = SubscriptionSpec::new().gt("p", (i % 5) as f64);
            let envelope = register(&mut matcher, &producer, &mut rng, i, &spec);
            if i == 4 {
                // Make the layout diverge from pure hash placement.
                let from = matcher.slice_of(SubscriptionId(4)).unwrap();
                matcher.migrate(SubscriptionId(4), &envelope, (from + 1) % 3).unwrap();
            }
            placed.insert(SubscriptionId(i), matcher.slice_of(SubscriptionId(i)).unwrap());
        }
        placed.insert(SubscriptionId(4), matcher.slice_of(SubscriptionId(4)).unwrap());
        let snapshots = matcher.snapshot_slices();

        let mem = MemorySim::native(CacheConfig::default(), CostModel::free());
        let mut restored = PartitionedMatcher::new(&mem, IndexKind::Poset, 3);
        restored.provision_keys(producer.sk().clone(), producer.public_key().clone());
        for (slice, snap) in snapshots.iter().enumerate() {
            restored.restore_slice(slice, snap).unwrap();
        }
        for (id, slice) in placed {
            assert_eq!(restored.slice_of(id), Some(slice), "{id} restored to its exact slice");
        }
        let header = producer.encrypt_header(&PublicationSpec::new().attr("p", 2.5), &mut rng);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        matcher.match_into(&header, &mut a).unwrap();
        restored.match_into(&header, &mut b).unwrap();
        assert_eq!(a, b);
    }
}
