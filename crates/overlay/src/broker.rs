//! One overlay broker: an enclave-hosted matching core on an untrusted,
//! failure-prone host, modelled as a **sans-IO lifecycle state machine**.
//!
//! ## Lifecycle
//!
//! A broker is always in exactly one [`Lifecycle`] state:
//!
//! ```text
//!  Cold ──provision──▶ Attesting ──▶ Linking ──▶ Serving ◀─────────┐
//!                                                   │              │
//!                                                 Crash         replay
//!                                                   ▼              │
//!                                                Crashed ──Restart──▶ Rejoining
//! ```
//!
//! Its entire runtime surface is [`Broker::step`]`(now, Input) ->
//! Vec<Output>`: inputs are wire frames, local edge traffic, admin
//! commands ([`Input::Crash`], [`Input::Restart`]) and timer ticks;
//! outputs are frames-to-links, local deliveries and typed
//! [`LinkEvent`]s. The broker performs **no IO** — the caller (normally
//! [`crate::fabric::OverlayFabric`], a thin deterministic scheduler)
//! shuttles outputs back in as inputs.
//!
//! ## Crash and sealed recovery
//!
//! [`Input::Crash`] drops *all* volatile state: the enclave, the index,
//! the live-subscription set, the covering tables, the link keys and
//! any half-open handshakes. What survives is the host's disk: a
//! [`sgx_sim::seal::VersionedSeal`]'d **recovery record** the enclave
//! re-seals at the end of any [`Broker::step`] that mutated
//! subscription state (one seal per step, however many mutations the
//! step carried), containing per matcher slice the engine snapshot
//! (with per-subscription *delivery identities*, so link interfaces are
//! restored as interfaces, not edge clients), the live envelope set
//! with origins, and every per-link [`ForwardingTable`] (rows + churn
//! counters). Single-slice brokers keep writing the original
//! (pre-partition) record layout, and both layouts restore. The seal is
//! keyed to a platform monotonic counter: a host replaying a stale
//! record is detected and the broker **refuses to rejoin**.
//!
//! On [`Input::Restart`] the broker relaunches its enclave, unseals and
//! restores, then — in `Rejoining` — re-runs the attested link
//! handshake with every neighbour and asks each one to **replay** the
//! live registration envelopes it had forwarded on the link
//! ([`scbr::protocol::messages::Message::ReplayRequest`]). Replayed
//! envelopes re-admit idempotently; subscriptions in the restored
//! record that the neighbour no longer vouches for were removed during
//! the outage and are dropped with the same *uncovering* bookkeeping as
//! a live unsubscription, propagated down the reverse path as
//! authenticated `sub-drop` frames. Recovery traffic therefore touches
//! only the broker's incident links — the tree never re-propagates.
//!
//! ## Trust split
//!
//! The in-enclave state is [`BrokerCore`]: the matching engine (holding
//! `SK` and the plaintext compiled subscriptions) plus the per-link
//! covering tables and the live envelope set. The untrusted shell only
//! ever handles ciphertext — registration envelopes, encrypted headers,
//! sealed link frames, sealed recovery records — and the *routing
//! decisions* the enclave intentionally reveals, exactly the §3.3 leak
//! the paper accepts for the single-router case.
//!
//! ## Interfaces
//!
//! The engine's index is shared by local subscribers and links: a
//! subscription learnt from neighbour `n` is registered under the
//! synthetic delivery identity [`link_interface`]`(n)` (top bit set), so
//! **one decrypt+match per publication** yields local deliveries *and*
//! the outgoing link set in the same enclave crossing. Per-hop batches go
//! through the gate in [`MAX_DRAIN`]-bounded chunks, mirroring the
//! single-router event loop.
//!
//! ## Partitioned matching
//!
//! With [`Broker::set_partition`] the core's matcher is sharded into N
//! [`PartitionedMatcher`] slices: subscriptions hash-placed per slice,
//! every publication fanned across all slices *inside the same single
//! crossing* and merged, and a serving-tick control loop that watches
//! the edge-occupancy skew and migrates subscriptions from the fullest
//! slice to the emptiest, make-before-break, once the skew exceeds
//! [`PartitionConfig::skew_threshold`]. The sealed record stores the
//! per-slice assignment, so a crash/rejoin restores the sharding
//! exactly — mid-migration included.

use crate::error::OverlayError;
use crate::forwarding::ForwardingTable;
use crate::partition::{PartitionConfig, PartitionedMatcher, RebalanceReport};
use scbr::cluster::SliceStats;
use scbr::codec;
use scbr::ids::{ClientId, SubscriptionId};
use scbr::index::IndexKind;
use scbr::protocol::keys::{provision_sk_via_attestation, ProducerCrypto};
use scbr::protocol::messages::{Message, PublishItem};
use scbr::roles::router::MAX_DRAIN;
use scbr::ScbrError;
use scbr_crypto::rng::CryptoRng;
use scbr_net::{NetError, SecureLink};
use scbr_telemetry::{
    count_bucket, FlightRecorder, HopRecord, Stage, StageHistograms, StageSummary, TraceId,
};
use sgx_sim::attest::{AttestationService, VerifierPolicy};
use sgx_sim::enclave::EnclaveBuilder;
use sgx_sim::link::{LinkAccept, LinkFinish, LinkHello, LinkInitiator, LinkKey, LinkResponder};
use sgx_sim::platform::CounterId;
use sgx_sim::seal::{SealPolicy, VersionedSeal};
use sgx_sim::{CacheConfig, CostModel, Enclave, MemStats, MemorySim, SgxPlatform};
use std::collections::{BTreeMap, BTreeSet};

/// Top bit of a [`ClientId`] marks a link interface rather than an edge
/// client.
pub const LINK_INTERFACE_BIT: u64 = 1 << 63;

/// The synthetic delivery identity for subscriptions learnt from
/// neighbour `n`.
pub fn link_interface(neighbor: usize) -> ClientId {
    ClientId(LINK_INTERFACE_BIT | neighbor as u64)
}

/// Version byte of the partitioned recovery-record layout. The layout is
/// announced by a `u32::MAX` magic where the legacy record stores its
/// engine-snapshot byte length (which can never be `u32::MAX`), so
/// pre-partition records parse unambiguously.
const RECORD_VERSION: u8 = 1;

/// Timer-driven liveness configuration, in tick units. Host-side
/// configuration: survives crashes, like the trust anchors.
///
/// With heartbeats enabled, a `Serving` broker emits one
/// [`Message::Heartbeat`] per established link every `interval` ticks
/// (sealed and sequence-numbered like any data frame), and raises
/// [`LinkEvent::Suspect`] against a link that has carried no authentic
/// frame for `suspect_after` ticks — or whose sequence gap has stood
/// unhealed for `gap_grace` ticks. With `None` (the default) the broker
/// keeps the legacy behaviour: no steady-state timer work at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeartbeatConfig {
    /// Ticks between heartbeats on each established link.
    pub interval: u64,
    /// Ticks of silence (no authentic inbound frame) before a link is
    /// declared [`SuspectReason::Silence`]. Must comfortably exceed
    /// `interval` (plus any expected delivery delay) or a slow-but-alive
    /// peer will be falsely accused.
    pub suspect_after: u64,
    /// Ticks an observed sequence gap may stand before the link is
    /// declared [`SuspectReason::Gap`] and proactively re-keyed.
    pub gap_grace: u64,
}

impl Default for HeartbeatConfig {
    fn default() -> Self {
        HeartbeatConfig { interval: 2, suspect_after: 8, gap_grace: 4 }
    }
}

impl HeartbeatConfig {
    /// An aggressive profile for tests and benches: heartbeat every
    /// tick, suspect after four silent ticks, re-key a wedged link after
    /// two.
    pub fn fast() -> Self {
        HeartbeatConfig { interval: 1, suspect_after: 4, gap_grace: 2 }
    }
}

/// Why a link was declared [`LinkEvent::Suspect`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuspectReason {
    /// No authentic frame for at least `suspect_after` ticks: the peer
    /// (or the whole path to it) may be dead. This is the signal the
    /// fabric aggregates into quorum and answers with an automatic
    /// crash-observed → restart.
    Silence,
    /// A sequence gap has stood unhealed for at least `gap_grace` ticks:
    /// the peer is provably alive (gap frames authenticate) but the
    /// channel is wedged on lost frames. Healed at link level — re-key
    /// and replay — never counted toward node-death quorum.
    Gap,
}

/// The broker lifecycle states (see the module docs for the diagram).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lifecycle {
    /// Constructed; no keys, no links.
    Cold,
    /// Remote attestation / key provisioning in flight.
    Attesting,
    /// Provisioned; attested link handshakes in flight.
    Linking,
    /// Fully operational: accepting traffic on every input.
    Serving,
    /// All volatile state lost; only the host's sealed record survives.
    Crashed,
    /// Restarted from the sealed record; re-linking and replaying
    /// neighbour live sets before serving again.
    Rejoining,
}

/// One step input to the broker state machine.
#[derive(Debug, Clone)]
pub enum Input {
    /// A wire frame received from neighbour `from` (sealed on attested
    /// links, plaintext handshake frames during link establishment).
    Frame {
        /// The sending neighbour.
        from: usize,
        /// The raw frame bytes.
        bytes: Vec<u8>,
    },
    /// A producer-sealed registration envelope from a local edge client.
    Subscribe {
        /// `{s}SK` + producer signature.
        envelope: Vec<u8>,
    },
    /// A producer-sealed unregistration envelope from a local edge
    /// client.
    Unsubscribe {
        /// `{id, client}SK` + producer signature.
        envelope: Vec<u8>,
    },
    /// A publication batch injected at this broker.
    Publish {
        /// The batch, in publish order.
        items: Vec<PublishItem>,
        /// Cross-hop trace id assigned at the producer
        /// ([`TraceId::NONE`] when telemetry is off). Carried in clear
        /// as link-frame metadata — routing metadata, not content (see
        /// [`scbr_telemetry::trace`]).
        trace: TraceId,
    },
    /// Admin: kill the broker, dropping all volatile state.
    Crash,
    /// Admin: restart a crashed broker from its sealed recovery record.
    Restart {
        /// Neighbours the operator knows are down right now: the rejoin
        /// skips their handshake and replay (their own later rejoin
        /// replays from *us* and reconciles both sides). Liveness
        /// detection is the scheduler's job — the broker itself is
        /// sans-IO and cannot probe.
        dead_links: Vec<usize>,
    },
    /// A timer tick: drives handshake initiation and replay kick-off
    /// while linking or rejoining, and — with heartbeats configured —
    /// steady-state liveness work while serving (heartbeat emission,
    /// dead-link probing, suspicion timeouts).
    Tick,
}

/// One step output from the broker state machine.
#[derive(Debug, Clone)]
pub enum Output {
    /// A frame to hand to a neighbour.
    Frame(LinkFrame),
    /// A publication delivered to a local edge client.
    Delivery(LocalDelivery),
    /// A typed lifecycle / link event for the operator.
    Event(LinkEvent),
}

/// Typed events surfaced by [`Broker::step`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkEvent {
    /// An authentic frame skipped ahead of the link's receive counter:
    /// the frames in between were lost. This is the liveness signal the
    /// rejoin protocol keys off (see [`scbr_net::SecureLink`]).
    Gap {
        /// The link the gap was observed on.
        link: usize,
        /// The sequence number expected next.
        expected: u64,
        /// The (authenticated) sequence number that arrived.
        got: u64,
    },
    /// A sealed channel to `link` is established (or re-established).
    LinkUp {
        /// The neighbour.
        link: usize,
    },
    /// A local registration was admitted.
    Subscribed {
        /// The subscription id.
        id: SubscriptionId,
    },
    /// A local unregistration was processed.
    Unsubscribed {
        /// The subscription id.
        id: SubscriptionId,
        /// False for an idempotent double-unsubscribe.
        removed: bool,
    },
    /// The broker dropped all volatile state.
    Crashed,
    /// A restart unsealed the recovery record and entered `Rejoining`.
    RejoinStarted {
        /// Live subscriptions restored from the sealed record.
        restored: usize,
    },
    /// Every neighbour finished replaying; the broker is serving again.
    Rejoined {
        /// Envelopes replayed by neighbours during the rejoin.
        replayed: usize,
        /// Restored subscriptions the neighbours no longer vouched for
        /// (removed during the outage) that were dropped and propagated.
        dropped_stale: usize,
        /// Virtual time spent between crash and rejoin completion.
        downtime: u64,
    },
    /// A liveness timer expired on a link: no authentic frame for
    /// `suspect_after` ticks, or a sequence gap unhealed past
    /// `gap_grace`. Emitted once per suspicion episode; the fabric
    /// aggregates silence suspicions into quorum.
    Suspect {
        /// The suspected link.
        link: usize,
        /// Why the timer expired.
        reason: SuspectReason,
    },
    /// A previously suspected link proved alive again (an authentic
    /// frame arrived, or the link re-keyed). Retracts the accusation.
    Cleared {
        /// The link whose suspicion was retracted.
        link: usize,
    },
    /// A serving broker finished a *late* replay over a link it had
    /// wrongly believed dead (stale restart view) or had to re-key after
    /// a gap: both sides are reconciled without a restart.
    Healed {
        /// The healed link.
        link: usize,
        /// Envelopes the neighbour replayed during the heal.
        replayed: usize,
        /// Restored subscriptions the neighbour no longer vouched for,
        /// dropped and propagated.
        dropped_stale: usize,
    },
}

impl LinkEvent {
    /// Stable, machine-readable kind label — the key telemetry
    /// aggregates event counts under (`events.gap`, `events.suspect`,
    /// …). Part of the observability surface: new variants may add
    /// labels, but existing ones must not change.
    pub fn label(&self) -> &'static str {
        match self {
            LinkEvent::Gap { .. } => "gap",
            LinkEvent::LinkUp { .. } => "link-up",
            LinkEvent::Subscribed { .. } => "subscribed",
            LinkEvent::Unsubscribed { .. } => "unsubscribed",
            LinkEvent::Crashed => "crashed",
            LinkEvent::RejoinStarted { .. } => "rejoin-started",
            LinkEvent::Rejoined { .. } => "rejoined",
            LinkEvent::Suspect { .. } => "suspect",
            LinkEvent::Cleared { .. } => "cleared",
            LinkEvent::Healed { .. } => "healed",
        }
    }
}

impl std::fmt::Display for LinkEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkEvent::Gap { link, expected, got } => {
                write!(f, "gap on link {link}: expected seq {expected}, got {got}")
            }
            LinkEvent::LinkUp { link } => write!(f, "link {link} up"),
            LinkEvent::Subscribed { id } => write!(f, "subscribed id {}", id.0),
            LinkEvent::Unsubscribed { id, removed } => {
                write!(f, "unsubscribed id {} (removed: {removed})", id.0)
            }
            LinkEvent::Crashed => write!(f, "crashed"),
            LinkEvent::RejoinStarted { restored } => {
                write!(f, "rejoin started ({restored} subscriptions restored)")
            }
            LinkEvent::Rejoined { replayed, dropped_stale, downtime } => write!(
                f,
                "rejoined ({replayed} replayed, {dropped_stale} stale dropped, \
                 downtime {downtime})"
            ),
            LinkEvent::Suspect { link, reason } => write!(f, "link {link} suspect ({reason})"),
            LinkEvent::Cleared { link } => write!(f, "link {link} cleared"),
            LinkEvent::Healed { link, replayed, dropped_stale } => {
                write!(f, "link {link} healed ({replayed} replayed, {dropped_stale} stale dropped)")
            }
        }
    }
}

impl std::fmt::Display for SuspectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SuspectReason::Silence => "silence",
            SuspectReason::Gap => "gap",
        })
    }
}

/// Where a message entered this broker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Origin {
    /// Injected locally (an edge client or producer attached here).
    Local,
    /// Received on the link from this neighbour.
    Link(usize),
}

/// What the enclave decided for one publication.
#[derive(Debug, Clone, Default)]
struct RouteDecision {
    /// Edge clients at this broker to deliver to.
    locals: Vec<ClientId>,
    /// Neighbour links to forward on (ascending, origin excluded).
    links: Vec<usize>,
}

/// Outcome of admitting one subscription envelope.
#[derive(Debug, Clone)]
struct AdmitOutcome {
    id: SubscriptionId,
    forward_to: Vec<usize>,
}

/// One live subscription as the broker's enclave tracks it: where it
/// entered, its compiled (plaintext — never leaves the enclave) form, and
/// the producer-signed envelope that proves it — kept so an uncovering
/// promotion (or a neighbour replay) can re-forward the subscription
/// with a unit the next hop authenticates independently.
struct LiveSub {
    origin: Origin,
    compiled: scbr::CompiledSubscription,
    envelope: Vec<u8>,
}

/// What a removal requires on one link: the envelopes of newly uncovered
/// subscriptions to forward first (make-before-break — upstream interest
/// never dips), then the removal itself.
struct LinkRemoval {
    neighbor: usize,
    uncovered: Vec<Vec<u8>>,
}

/// Outcome of processing one unregistration.
struct RemoveOutcome {
    id: SubscriptionId,
    /// False when the id was unknown here (double-unsubscribe): nothing
    /// changed, no traffic due.
    removed: bool,
    /// Links the subscription had actually been forwarded on. Links where
    /// it was pruned are absent — a pruned removal is free.
    links: Vec<LinkRemoval>,
}

/// The enclave-resident routing state.
struct BrokerCore {
    matcher: PartitionedMatcher,
    /// Per neighbour (ascending), the covering table of subscriptions
    /// forwarded on that link.
    upstream: Vec<(usize, ForwardingTable)>,
    /// Every live subscription, keyed by id (the uncovering candidates).
    live: BTreeMap<SubscriptionId, LiveSub>,
    /// Flood mode: forward every subscription on every link (the
    /// equivalence oracle for tests; covering-pruned is the real mode).
    flood: bool,
    /// Reusable match buffer for the per-hop routing path: one `Vec` per
    /// broker instead of one per publication per hop.
    route_buf: std::sync::Mutex<Vec<ClientId>>,
    /// In-enclave flight recorder for cross-hop publication tracing.
    /// Volatile by design: hop records die with a crash (never sealed
    /// into the recovery record) and leave the enclave only through the
    /// explicit, costed drain ocall ([`Broker::drain_trace`]).
    recorder: FlightRecorder,
    /// Broker-level stage histograms (seal, per-hop crossing); the
    /// engine's own scratch holds the decrypt/index-match ones. Fixed
    /// arrays with epoch-stamped clears — recording never allocates.
    stages: StageHistograms,
}

impl BrokerCore {
    fn fresh(
        mem: &MemorySim,
        kind: IndexKind,
        flood: bool,
        neighbors: &[usize],
        slices: usize,
    ) -> Self {
        BrokerCore {
            matcher: PartitionedMatcher::new(mem, kind, slices),
            upstream: neighbors.iter().map(|&n| (n, ForwardingTable::new())).collect(),
            live: BTreeMap::new(),
            flood,
            route_buf: std::sync::Mutex::new(Vec::new()),
            recorder: FlightRecorder::default(),
            stages: StageHistograms::new(),
        }
    }

    /// Registers an envelope and decides which links to propagate it on.
    /// `replay` marks a neighbour-replay re-admission: covering decisions
    /// for subscriptions that were already live before the crash were
    /// counted in the sealed ledger, so they must not increment the
    /// pruned counter a second time.
    fn admit(
        &mut self,
        envelope: &[u8],
        origin: Origin,
        replay: bool,
    ) -> Result<AdmitOutcome, ScbrError> {
        let deliver_to = match origin {
            Origin::Local => None,
            Origin::Link(l) => Some(link_interface(l)),
        };
        let (id, compiled) = self.matcher.register_envelope_as(envelope, deliver_to)?;
        let already_counted = replay && self.live.contains_key(&id);
        let flood = self.flood;
        let mut forward_to = Vec::new();
        for (neighbor, table) in &mut self.upstream {
            if origin == Origin::Link(*neighbor) {
                continue; // never forward back where it came from
            }
            if table.contains(id) {
                // Re-registration of an id already forwarded there. If the
                // filter changed, replace the row *and* re-forward — the
                // next hop replaces its copy the same way, recursively,
                // and never matches a stale spec. (The coverage check must
                // not run here: the id's own stale row could "cover" its
                // replacement.) If the filter is *unchanged* — the common
                // case during a neighbour replay — the upstream copy is
                // already exact and no traffic is due.
                let unchanged = table.get(id) == Some(&compiled);
                table.record(id, compiled.clone());
                if !unchanged {
                    forward_to.push(*neighbor);
                }
            } else if !flood && table.covered(&compiled) {
                // Flood mode records everything (the table *is* the
                // forwarded set, and the counters stay comparable across
                // modes) — it never consults coverage.
                if !already_counted {
                    table.note_pruned();
                }
            } else {
                table.record(id, compiled.clone());
                forward_to.push(*neighbor);
            }
        }
        self.live.insert(id, LiveSub { origin, compiled, envelope: envelope.to_vec() });
        Ok(AdmitOutcome { id, forward_to })
    }

    /// Processes an authenticated unregistration envelope.
    fn remove(&mut self, envelope: &[u8], origin: Origin) -> Result<RemoveOutcome, ScbrError> {
        let (id, _client, existed) = self.matcher.unregister_envelope(envelope)?;
        if !existed {
            return Ok(RemoveOutcome { id, removed: false, links: Vec::new() });
        }
        Ok(self.uncover_after_removal(id, origin))
    }

    /// Removes `id` without an envelope (the rejoin reconciliation path:
    /// link authentication of the attested peer stands in for the
    /// producer signature, which may have been lost with the outage).
    fn remove_by_id(&mut self, id: SubscriptionId, origin: Origin) -> RemoveOutcome {
        if !self.matcher.unregister(id) {
            return RemoveOutcome { id, removed: false, links: Vec::new() };
        }
        self.uncover_after_removal(id, origin)
    }

    /// The recorded origin of a live subscription.
    fn origin_of(&self, id: SubscriptionId) -> Option<Origin> {
        self.live.get(&id).map(|s| s.origin)
    }

    /// Applies Siena's **uncovering rule** per link after `id` left the
    /// index — any still-live subscription the removed one had covered
    /// (and therefore pruned) must now be promoted into the forwarding
    /// table and sent upstream, while links that only ever saw the
    /// subscription pruned stay silent.
    fn uncover_after_removal(&mut self, id: SubscriptionId, origin: Origin) -> RemoveOutcome {
        self.live.remove(&id);
        let live = &self.live;
        let mut links = Vec::new();
        for (neighbor, table) in &mut self.upstream {
            if origin == Origin::Link(*neighbor) {
                continue; // the removal came from there; it already knows
            }
            if !table.remove(id) {
                continue; // pruned on this link: upstream never saw it
            }
            // Candidates for promotion: live subscriptions routed toward
            // this link that are not already forwarded there. (In flood
            // mode everything is already in the table, so this is empty
            // and no uncovering ever happens — correct, nothing was ever
            // pruned.)
            let candidates: Vec<(&SubscriptionId, &LiveSub)> = live
                .iter()
                .filter(|(cid, sub)| {
                    sub.origin != Origin::Link(*neighbor) && !table.contains(**cid)
                })
                .collect();
            // Broadest-first, so one promotion can keep narrower
            // candidates pruned (ties broken by id for determinism).
            let coverage: Vec<usize> = candidates
                .iter()
                .map(|(_, a)| {
                    candidates.iter().filter(|(_, b)| a.compiled.covers(&b.compiled)).count()
                })
                .collect();
            let mut order: Vec<usize> = (0..candidates.len()).collect();
            order.sort_by(|&i, &j| {
                coverage[j].cmp(&coverage[i]).then(candidates[i].0 .0.cmp(&candidates[j].0 .0))
            });
            let mut uncovered = Vec::new();
            for &i in &order {
                let (cid, sub) = candidates[i];
                if table.covered(&sub.compiled) {
                    continue; // still covered by the remaining interest
                }
                table.record_uncovered(*cid, sub.compiled.clone());
                uncovered.push(sub.envelope.clone());
            }
            links.push(LinkRemoval { neighbor: *neighbor, uncovered });
        }
        RemoveOutcome { id, removed: true, links }
    }

    /// Decrypts and matches a chunk of headers, splitting each match set
    /// into local deliveries and outgoing links.
    fn route(&self, headers: &[&[u8]], origin: Origin) -> Vec<Result<RouteDecision, ScbrError>> {
        // One match buffer per broker, reused across every header of every
        // hop (the engine's own decrypt/decode/traversal scratch is reused
        // inside `match_encrypted_into`).
        let mut matched = self.route_buf.lock().expect("route buffer poisoned");
        headers
            .iter()
            .map(|ct| {
                self.matcher.match_into(ct, &mut matched)?;
                let mut decision = RouteDecision::default();
                for client in matched.iter() {
                    if client.0 & LINK_INTERFACE_BIT == 0 {
                        decision.locals.push(*client);
                    } else {
                        let neighbor = (client.0 & !LINK_INTERFACE_BIT) as usize;
                        if origin != Origin::Link(neighbor) {
                            decision.links.push(neighbor);
                        }
                    }
                }
                Ok(decision)
            })
            .collect()
    }

    /// The live registration envelopes recorded as forwarded on the link
    /// to `neighbor`, in table order — what a rejoining peer replays.
    fn replay_rows(&self, neighbor: usize) -> Vec<Vec<u8>> {
        let Some((_, table)) = self.upstream.iter().find(|(n, _)| *n == neighbor) else {
            return Vec::new();
        };
        table
            .row_ids()
            .iter()
            .filter_map(|id| self.live.get(id).map(|sub| sub.envelope.clone()))
            .collect()
    }

    /// Serialises the full recovery record: per matcher slice the engine
    /// snapshot (bodies + delivery identities — the slice sections *are*
    /// the sealed per-slice assignment), the live envelope set with
    /// origins, and every per-link covering table (rows + counters).
    /// Single-slice brokers write the original pre-partition layout
    /// byte-for-byte, so their records stay restorable by older builds.
    /// Runs inside the enclave; the result is only ever persisted
    /// sealed.
    fn serialize_record(&self) -> Vec<u8> {
        let mut w = codec::Writer::new();
        let snapshots = self.matcher.snapshot_slices();
        if snapshots.len() == 1 {
            w.bytes(&snapshots[0]);
        } else {
            w.u32(u32::MAX).u8(RECORD_VERSION).u32(snapshots.len() as u32);
            for snapshot in &snapshots {
                w.bytes(snapshot);
            }
        }
        w.u32(self.live.len() as u32);
        for (id, sub) in &self.live {
            w.u64(id.0);
            match sub.origin {
                Origin::Local => {
                    w.u8(0);
                }
                Origin::Link(n) => {
                    w.u8(1).u64(n as u64);
                }
            }
            w.bytes(&sub.envelope);
        }
        w.u32(self.upstream.len() as u32);
        for (neighbor, table) in &self.upstream {
            w.u64(*neighbor as u64);
            let rows = table.row_ids();
            w.u32(rows.len() as u32);
            for id in rows {
                w.u64(id.0);
            }
            let (pruned, forwarded_total, removed, uncovered) = table.counters();
            w.u64(pruned).u64(forwarded_total).u64(removed).u64(uncovered);
        }
        w.into_bytes()
    }

    /// Rebuilds a core from a recovery record (or fresh when the host has
    /// no record — a disk-loss restart). A versioned record restores the
    /// sealed per-slice assignment exactly — the recorded slice count
    /// wins over `slices`, so a config change takes effect through the
    /// rebalancer, never by scrambling a restore. A legacy
    /// (pre-partition) record restores wholesale into slice 0 of the
    /// configured partition; the rebalancer re-spreads it.
    fn restore(
        record: Option<&[u8]>,
        mem: &MemorySim,
        kind: IndexKind,
        flood: bool,
        neighbors: &[usize],
        slices: usize,
    ) -> Result<Self, ScbrError> {
        let mut core = BrokerCore::fresh(mem, kind, flood, neighbors, slices);
        let Some(bytes) = record else {
            return Ok(core);
        };
        let mut r = codec::Reader::new(bytes);
        if r.u32()? == u32::MAX {
            if r.u8()? != RECORD_VERSION {
                return Err(ScbrError::Codec { context: "recovery record version" });
            }
            let n_slices = r.u32()? as usize;
            if n_slices == 0 {
                return Err(ScbrError::Codec { context: "recovery slice count" });
            }
            core.matcher = PartitionedMatcher::new(mem, kind, n_slices);
            for slice in 0..n_slices {
                let snapshot = r.bytes()?;
                core.matcher.restore_slice(slice, &snapshot)?;
            }
        } else {
            r = codec::Reader::new(bytes);
            let snapshot = r.bytes()?;
            core.matcher.restore_slice(0, &snapshot)?;
        }
        let n_live = r.u32()?;
        for _ in 0..n_live {
            let id = SubscriptionId(r.u64()?);
            let origin = match r.u8()? {
                0 => Origin::Local,
                1 => Origin::Link(r.u64()? as usize),
                _ => return Err(ScbrError::Codec { context: "recovery origin tag" }),
            };
            let envelope = r.bytes()?;
            let Some((_, compiled)) = core.matcher.compiled_of(id)? else {
                return Err(ScbrError::Codec { context: "recovery live set" });
            };
            core.live.insert(id, LiveSub { origin, compiled, envelope });
        }
        let n_links = r.u32()?;
        for _ in 0..n_links {
            let neighbor = r.u64()? as usize;
            let n_rows = r.u32()?;
            let mut entries = Vec::with_capacity(n_rows as usize);
            for _ in 0..n_rows {
                let id = SubscriptionId(r.u64()?);
                let Some(sub) = core.live.get(&id) else {
                    return Err(ScbrError::Codec { context: "recovery table row" });
                };
                entries.push((id, sub.compiled.clone()));
            }
            let counters = (r.u64()?, r.u64()?, r.u64()?, r.u64()?);
            let Some(slot) = core.upstream.iter_mut().find(|(n, _)| *n == neighbor) else {
                return Err(ScbrError::Codec { context: "recovery table neighbour" });
            };
            slot.1 = ForwardingTable::rebuild(entries, counters)
                .ok_or(ScbrError::Codec { context: "recovery table ledger" })?;
        }
        if !r.is_exhausted() {
            return Err(ScbrError::Codec { context: "recovery trailing bytes" });
        }
        Ok(core)
    }

    /// One closed-loop rebalancing run: while the edge-occupancy skew
    /// exceeds `threshold`, migrate up to `batch` edge subscriptions per
    /// pass from the fullest slice to the emptiest (make-before-break —
    /// see [`PartitionedMatcher::migrate`]; link-interface copies never
    /// move). Each pass moves at most half the fullest↔emptiest gap, so
    /// every pass strictly narrows it and the loop terminates.
    fn rebalance(&mut self, threshold: f64, batch: usize) -> Result<RebalanceReport, ScbrError> {
        let skew_before = self.matcher.occupancy_skew();
        let mut migrated = 0usize;
        let mut passes = 0usize;
        if self.matcher.slice_count() > 1 {
            while self.matcher.occupancy_skew() > threshold {
                let (fullest, emptiest) = self.matcher.extremes();
                let counts = self.matcher.edge_counts();
                if counts[fullest] <= counts[emptiest] + 1 {
                    break; // as level as migration can make it
                }
                let headroom = (counts[fullest] - counts[emptiest]) / 2;
                let candidates = self.matcher.edge_ids_on(fullest, batch.min(headroom).max(1));
                if candidates.is_empty() {
                    break; // remaining load is pinned interface copies
                }
                for id in candidates {
                    let Some(sub) = self.live.get(&id) else {
                        continue;
                    };
                    let envelope = sub.envelope.clone();
                    if self.matcher.migrate(id, &envelope, emptiest)? {
                        migrated += 1;
                    }
                }
                passes += 1;
            }
        }
        Ok(RebalanceReport {
            migrated,
            passes,
            skew_before,
            skew_after: self.matcher.occupancy_skew(),
        })
    }
}

/// One sealed frame to hand to a neighbour.
#[derive(Debug, Clone)]
pub struct LinkFrame {
    /// Destination router.
    pub to: usize,
    /// Source router (the receiver selects its inbound channel by this).
    pub from: usize,
    /// The sealed wire bytes.
    pub bytes: Vec<u8>,
}

/// A publication delivered to an edge client of this broker.
#[derive(Debug, Clone)]
pub struct LocalDelivery {
    /// The delivering broker.
    pub router: usize,
    /// The edge client.
    pub client: ClientId,
    /// The delivered item (payload still encrypted under the group key).
    pub item: PublishItem,
}

/// The two halves of one established link at one endpoint. `Sealed` is
/// the production (and by far the common) variant, so its size is the
/// collection's working size either way — boxing it would just add a
/// pointer chase to every frame.
#[allow(clippy::large_enum_variant)]
enum LinkChannel {
    /// Sealed under an attested link key.
    Sealed { outbound: SecureLink, inbound: SecureLink },
    /// Pre-shared-trust mode: frames pass in the clear.
    Plain,
}

/// Per-broker counters (cumulative unless reset).
#[derive(Debug, Clone, Copy)]
pub struct BrokerStats {
    /// The broker's router id.
    pub router: usize,
    /// The broker's lifecycle state.
    pub state: Lifecycle,
    /// Live subscriptions in the index (local + link interfaces).
    pub subscriptions: usize,
    /// Enclave crossings since the last reset.
    pub ecalls: u64,
    /// OCALL round-trips since the last reset.
    pub ocalls: u64,
    /// Virtual nanoseconds elapsed since the last reset.
    pub elapsed_ns: f64,
    /// Live forwarding-table rows, summed over links (equals
    /// `forwarded_total − removed`).
    pub forwarded: u64,
    /// Subscriptions covering-pruned, summed over links (cumulative).
    pub pruned: u64,
    /// Subscriptions ever forwarded upstream, summed over links
    /// (cumulative; includes uncovering promotions).
    pub forwarded_total: u64,
    /// Forwarding-table rows removed again, summed over links
    /// (cumulative).
    pub removed: u64,
    /// Uncovering promotions (previously-pruned subscriptions forwarded
    /// after a removal exposed them), summed over links (cumulative).
    pub uncovered: u64,
    /// Sequence-number gaps observed on inbound links (cumulative; the
    /// liveness signal — each one is a [`LinkEvent::Gap`]).
    pub gaps: u64,
    /// Heartbeat frames emitted (cumulative; zero with heartbeats
    /// disabled).
    pub heartbeats: u64,
    /// Recovery-record seals performed (cumulative). At most one per
    /// [`Broker::step`], however many mutations the step carried.
    pub seals: u64,
    /// Seals the per-step coalescing avoided (cumulative): mutations
    /// that found the record already marked dirty in the same step and
    /// would each have paid a seal ECALL before coalescing.
    pub seals_saved: u64,
}

impl BrokerStats {
    /// Uniform counter snapshot for the metrics registry (stable label
    /// set; `elapsed_ns` is excluded as non-integral — read it from the
    /// struct directly).
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("subscriptions", self.subscriptions as u64),
            ("ecalls", self.ecalls),
            ("ocalls", self.ocalls),
            ("forwarded", self.forwarded),
            ("pruned", self.pruned),
            ("forwarded_total", self.forwarded_total),
            ("removed", self.removed),
            ("uncovered", self.uncovered),
            ("gaps", self.gaps),
            ("heartbeats", self.heartbeats),
            ("seals", self.seals),
            ("seals_saved", self.seals_saved),
        ]
    }
}

/// Result of opening an inbound frame, lifted out of the borrow on the
/// link map.
enum Opened {
    Wire { wire: Vec<u8>, meta: u64 },
    Gap { expected: u64, got: u64 },
    Failed(NetError),
    NoChannel,
}

/// One overlay broker (untrusted shell + enclave-resident core), driven
/// exclusively through [`Broker::step`].
pub struct Broker {
    id: usize,
    state: Lifecycle,
    platform: Option<SgxPlatform>,
    enclave: Option<Enclave>,
    /// The measured routing binary, kept for enclave relaunch on restart.
    code: Vec<u8>,
    kind: IndexKind,
    flood: bool,
    core: BrokerCore,
    links: BTreeMap<usize, LinkChannel>,
    neighbors: Vec<usize>,
    /// Half-open handshakes we initiated (awaiting link-accept).
    initiations: BTreeMap<usize, LinkInitiator>,
    /// Half-open handshakes we responded to (awaiting link-finish).
    responses: BTreeMap<usize, LinkResponder>,
    /// Trust anchors for verifying peer quotes during link handshakes.
    service: Option<AttestationService>,
    policy: Option<VerifierPolicy>,
    /// The sealed recovery record, as stored on the untrusted host disk.
    sealed: Option<Vec<u8>>,
    /// The platform monotonic counter keying the record's rollback
    /// protection.
    counter: Option<CounterId>,
    /// Rejoin bookkeeping: links still owing a replay, replay requests
    /// already sent, per-link ids confirmed by the replay so far, and
    /// neighbours the operator declared dead at restart (skipped until
    /// they rejoin on their own).
    pending_replays: BTreeSet<usize>,
    requested: BTreeSet<usize>,
    confirmed: BTreeMap<usize, BTreeSet<SubscriptionId>>,
    dead_links: BTreeSet<usize>,
    replayed_subs: usize,
    dropped_stale: usize,
    crashed_at: u64,
    now: u64,
    gaps: u64,
    /// Liveness timers (host configuration; `None` disables all
    /// steady-state tick work).
    heartbeats: Option<HeartbeatConfig>,
    /// Ticks processed over the broker's lifetime (the liveness clock).
    ticks: u64,
    /// Per link, the tick of the last *authentic* inbound frame
    /// (including gap frames — a gap proves the peer alive).
    last_rx: BTreeMap<usize, u64>,
    /// Per link, the tick of the last heartbeat we emitted.
    last_hb: BTreeMap<usize, u64>,
    /// Per link, the tick a sequence gap was first observed (cleared on
    /// re-key — the gapped channel can never advance on its own).
    gap_since: BTreeMap<usize, u64>,
    /// Links currently under suspicion (one `Suspect` per episode).
    suspects: BTreeSet<usize>,
    /// Links needing a pull-replay once their channel re-keys (set by
    /// the gap-heal path).
    resync: BTreeSet<usize>,
    /// Replay requests received while not yet serving (a neighbour
    /// rejoining concurrently with us); served on our own transition to
    /// `Serving`.
    parked_replays: BTreeSet<usize>,
    /// Per link, the tick of our last handshake initiation (probe
    /// retry pacing).
    initiated_at: BTreeMap<usize, u64>,
    /// Per link, the tick of our last replay request (pull-retry
    /// pacing: a request toward a neighbour that was dead when we sent
    /// it is re-sent once its age exceeds the suspicion window).
    requested_at: BTreeMap<usize, u64>,
    /// Heartbeat frames emitted (cumulative).
    heartbeats_sent: u64,
    /// Stage-latency and hop-trace instrumentation. Host configuration
    /// (like the trust anchors): survives crashes, re-applied to the
    /// rebuilt core on restart. Off by default — the uninstrumented hot
    /// path stays byte-for-byte identical.
    telemetry: bool,
    /// Matcher partitioning + rebalancing thresholds. Host
    /// configuration: survives crashes (the *assignment* is what the
    /// sealed record restores).
    partition: PartitionConfig,
    /// Subscription state mutated during the current `step`; flushed to
    /// (at most) one [`Broker::checkpoint`] on the way out.
    dirty: bool,
    /// Recovery-record seals performed (cumulative).
    seals: u64,
    /// Seals avoided by per-step coalescing (cumulative).
    seals_saved: u64,
    rng: CryptoRng,
}

impl std::fmt::Debug for Broker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Broker")
            .field("id", &self.id)
            .field("state", &self.state)
            .field("attested", &self.enclave.is_some())
            .field("links", &self.links.len())
            .field("subscriptions", &self.core.matcher.subscriptions())
            .finish()
    }
}

impl Broker {
    /// Launches an attested broker: own platform (its own machine), the
    /// routing enclave measured from `code`, index in enclave memory, a
    /// platform monotonic counter reserved for its recovery record.
    ///
    /// # Errors
    ///
    /// Propagates enclave-launch failures.
    pub fn attested(
        id: usize,
        seed: u64,
        kind: IndexKind,
        code: &[u8],
        flood: bool,
    ) -> Result<Self, OverlayError> {
        let platform = SgxPlatform::for_testing(seed);
        let enclave = platform.launch(router_builder(code))?;
        let counter = platform.create_counter();
        let core = BrokerCore::fresh(enclave.memory(), kind, flood, &[], 1);
        Ok(Broker {
            id,
            state: Lifecycle::Cold,
            platform: Some(platform),
            enclave: Some(enclave),
            code: code.to_vec(),
            kind,
            flood,
            core,
            links: BTreeMap::new(),
            neighbors: Vec::new(),
            initiations: BTreeMap::new(),
            responses: BTreeMap::new(),
            service: None,
            policy: None,
            sealed: None,
            counter: Some(counter),
            pending_replays: BTreeSet::new(),
            requested: BTreeSet::new(),
            confirmed: BTreeMap::new(),
            dead_links: BTreeSet::new(),
            replayed_subs: 0,
            dropped_stale: 0,
            crashed_at: 0,
            now: 0,
            gaps: 0,
            heartbeats: None,
            ticks: 0,
            last_rx: BTreeMap::new(),
            last_hb: BTreeMap::new(),
            gap_since: BTreeMap::new(),
            suspects: BTreeSet::new(),
            resync: BTreeSet::new(),
            parked_replays: BTreeSet::new(),
            initiated_at: BTreeMap::new(),
            requested_at: BTreeMap::new(),
            heartbeats_sent: 0,
            telemetry: false,
            partition: PartitionConfig::default(),
            dirty: false,
            seals: 0,
            seals_saved: 0,
            rng: CryptoRng::from_seed(seed ^ 0x6c69_6e6b),
        })
    }

    /// Builds a plain broker for pre-shared-trust deployments and tests:
    /// no enclave, free-cost native memory, unsealed links. Crash/rejoin
    /// still works — the recovery record is stored unsealed (no rollback
    /// protection without a platform).
    pub fn preshared(id: usize, seed: u64, kind: IndexKind, flood: bool) -> Self {
        let mem = MemorySim::native(CacheConfig::default(), CostModel::free());
        Broker {
            id,
            state: Lifecycle::Cold,
            platform: None,
            enclave: None,
            code: Vec::new(),
            kind,
            flood,
            core: BrokerCore::fresh(&mem, kind, flood, &[], 1),
            links: BTreeMap::new(),
            neighbors: Vec::new(),
            initiations: BTreeMap::new(),
            responses: BTreeMap::new(),
            service: None,
            policy: None,
            sealed: None,
            counter: None,
            pending_replays: BTreeSet::new(),
            requested: BTreeSet::new(),
            confirmed: BTreeMap::new(),
            dead_links: BTreeSet::new(),
            replayed_subs: 0,
            dropped_stale: 0,
            crashed_at: 0,
            now: 0,
            gaps: 0,
            heartbeats: None,
            ticks: 0,
            last_rx: BTreeMap::new(),
            last_hb: BTreeMap::new(),
            gap_since: BTreeMap::new(),
            suspects: BTreeSet::new(),
            resync: BTreeSet::new(),
            parked_replays: BTreeSet::new(),
            initiated_at: BTreeMap::new(),
            requested_at: BTreeMap::new(),
            heartbeats_sent: 0,
            telemetry: false,
            partition: PartitionConfig::default(),
            dirty: false,
            seals: 0,
            seals_saved: 0,
            rng: CryptoRng::from_seed(seed ^ 0x6c69_6e6b),
        }
    }

    /// The broker's router id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The broker's lifecycle state.
    pub fn lifecycle(&self) -> Lifecycle {
        self.state
    }

    /// The broker's platform (attested brokers only).
    pub fn platform(&self) -> Option<&SgxPlatform> {
        self.platform.as_ref()
    }

    /// The broker's enclave (attested brokers only; `None` while
    /// crashed).
    pub fn enclave(&self) -> Option<&Enclave> {
        self.enclave.as_ref()
    }

    /// The sealed recovery record currently on the host's disk — exposed
    /// because the disk is *outside* the trust boundary: tests (and
    /// adversaries) may read or swap it; the seal, not the accessor,
    /// provides the protection.
    pub fn sealed_record(&self) -> Option<&[u8]> {
        self.sealed.as_deref()
    }

    /// Overwrites the host-disk recovery record (models a malicious or
    /// restored-from-backup host). A stale record is caught by the
    /// monotonic counter at restart.
    pub fn set_sealed_record(&mut self, record: Vec<u8>) {
        self.sealed = Some(record);
    }

    /// Runs `f` on the enclave-resident core, crossing the call gate when
    /// attested.
    fn call<R>(&mut self, f: impl FnOnce(&mut BrokerCore) -> R) -> R {
        let core = &mut self.core;
        match &self.enclave {
            Some(enclave) => enclave.ecall(|_ctx| f(core)),
            None => f(core),
        }
    }

    /// Current virtual-clock reading of the broker's memory simulator.
    /// A pure f64 read — charges nothing, so instrumented and
    /// uninstrumented runs observe identical cost models.
    fn mem_elapsed_ns(&self) -> f64 {
        self.core.matcher.memory().elapsed_ns()
    }

    /// Declares the broker's neighbour set, creating one (empty) covering
    /// table per link. Call once, before provisioning.
    pub fn set_neighbors(&mut self, neighbors: &[usize]) {
        self.neighbors = neighbors.to_vec();
        self.core.upstream = neighbors.iter().map(|&n| (n, ForwardingTable::new())).collect();
    }

    /// Configures matcher partitioning (host configuration: survives
    /// crashes, like the trust anchors — what the sealed record restores
    /// is the *assignment*). Call once, before provisioning: the matcher
    /// is rebuilt empty with the new slice count, dropping any
    /// registered state and keys.
    pub fn set_partition(&mut self, config: PartitionConfig) {
        self.partition = PartitionConfig {
            slices: config.slices.max(1),
            skew_threshold: config.skew_threshold.max(1.0),
            migration_batch: config.migration_batch.max(1),
        };
        let mem = self.core.matcher.memory().clone();
        self.core.matcher = PartitionedMatcher::new(&mem, self.kind, self.partition.slices);
        self.core.matcher.set_telemetry(self.telemetry);
    }

    /// The configured matcher partitioning.
    pub fn partition_config(&self) -> PartitionConfig {
        self.partition
    }

    /// Installs the trust anchors (attestation service + verifier
    /// policy) the broker uses to verify peer quotes during link
    /// handshakes. Host-side configuration: survives crashes.
    pub fn configure_trust(&mut self, service: AttestationService, policy: VerifierPolicy) {
        self.service = Some(service);
        self.policy = Some(policy);
    }

    /// Installs `SK` and the producer key directly (pre-shared trust).
    /// Moves a cold broker straight to `Serving` (plain links carry no
    /// handshake).
    pub fn provision_preshared(&mut self, producer: &ProducerCrypto) {
        let sk = producer.sk().clone();
        let pk = producer.public_key().clone();
        self.call(|c| c.matcher.provision_keys(sk, pk));
        if self.state == Lifecycle::Cold {
            self.state = Lifecycle::Serving;
        }
    }

    /// Provisions `SK` into the broker's enclave via remote attestation
    /// (the producer releases the key only to the expected measurement).
    /// Moves a cold broker through `Attesting` into `Linking` (or
    /// straight to `Serving` with no neighbours); a rejoining broker
    /// stays `Rejoining`.
    ///
    /// # Errors
    ///
    /// Any attestation, policy or crypto failure — the broker is left in
    /// `Attesting`; also fails on a pre-shared broker (nothing to
    /// attest).
    pub fn provision_attested(
        &mut self,
        service: &AttestationService,
        policy: &VerifierPolicy,
        producer: &ProducerCrypto,
        producer_rng: &mut CryptoRng,
    ) -> Result<(), OverlayError> {
        if self.state == Lifecycle::Cold {
            self.state = Lifecycle::Attesting;
        }
        let platform = self
            .platform
            .as_ref()
            .ok_or(OverlayError::Link { reason: "broker has no platform" })?;
        let enclave =
            self.enclave.as_ref().ok_or(OverlayError::Link { reason: "broker has no enclave" })?;
        let (sk, pk) = provision_sk_via_attestation(
            platform,
            enclave,
            service,
            policy,
            producer,
            &mut self.rng,
            producer_rng,
        )?;
        self.call(|c| c.matcher.provision_keys(sk, pk));
        if self.state == Lifecycle::Attesting {
            self.state =
                if self.neighbors.is_empty() { Lifecycle::Serving } else { Lifecycle::Linking };
        }
        Ok(())
    }

    /// Configures (or disables, with `None`) the liveness timers. Host
    /// configuration: survives crashes. Takes effect on the next tick.
    pub fn set_heartbeats(&mut self, config: Option<HeartbeatConfig>) {
        self.heartbeats = config;
    }

    /// The configured liveness timers, if any.
    pub fn heartbeat_config(&self) -> Option<HeartbeatConfig> {
        self.heartbeats
    }

    /// Installs an unsealed link to `neighbor` (pre-shared trust).
    pub fn install_plain_link(&mut self, neighbor: usize) {
        self.links.insert(neighbor, LinkChannel::Plain);
        self.last_rx.insert(neighbor, self.ticks);
        self.gap_since.remove(&neighbor);
    }

    fn install_sealed_link(&mut self, neighbor: usize, key: &LinkKey) {
        let local = self.id as u64;
        self.links.insert(
            neighbor,
            LinkChannel::Sealed {
                outbound: SecureLink::outbound(key.as_bytes(), local, neighbor as u64),
                inbound: SecureLink::inbound(key.as_bytes(), local, neighbor as u64),
            },
        );
        // A fresh key resets the liveness view of the link: the silence
        // clock restarts and any wedge died with the old channel.
        self.last_rx.insert(neighbor, self.ticks);
        self.gap_since.remove(&neighbor);
        self.initiated_at.remove(&neighbor);
    }

    fn seal_to(&mut self, neighbor: usize, wire: &[u8]) -> Result<Vec<u8>, OverlayError> {
        self.seal_to_meta(neighbor, wire, 0)
    }

    /// [`Broker::seal_to`] with a clear-text metadata word (the trace id
    /// of a publication batch). The word is bound into the sealed
    /// frame's AAD, so tampering is detected on open; plain links have
    /// no frame header to carry it, so there it is dropped — cross-hop
    /// traces need sealed links.
    fn seal_to_meta(
        &mut self,
        neighbor: usize,
        wire: &[u8],
        meta: u64,
    ) -> Result<Vec<u8>, OverlayError> {
        let rng = &mut self.rng;
        match self.links.get_mut(&neighbor) {
            Some(LinkChannel::Sealed { outbound, .. }) => Ok(outbound.seal_meta(wire, meta, rng)),
            Some(LinkChannel::Plain) => Ok(wire.to_vec()),
            None => Err(OverlayError::Link { reason: "no link to neighbour" }),
        }
    }

    // ---- the state machine ---------------------------------------------

    /// Advances the state machine by one input at virtual time `now`.
    /// This is the broker's **entire** runtime surface: frames, local
    /// traffic, admin commands and timer ticks all enter here, and every
    /// effect — frames to send, local deliveries, lifecycle events —
    /// comes back as an [`Output`] for the caller to dispatch.
    ///
    /// # Errors
    ///
    /// Inputs invalid for the current [`Lifecycle`] state are
    /// [`OverlayError::Lifecycle`]; frame authentication, routing and
    /// sealing failures propagate with their own kinds.
    pub fn step(&mut self, now: u64, input: Input) -> Result<Vec<Output>, OverlayError> {
        self.now = now;
        let outs = match input {
            Input::Crash => self.on_crash(),
            Input::Restart { dead_links } => self.on_restart(&dead_links),
            Input::Tick => self.on_tick(),
            Input::Frame { from, bytes } => self.on_frame(from, &bytes),
            Input::Subscribe { envelope } => self.on_subscribe(&envelope),
            Input::Unsubscribe { envelope } => self.on_unsubscribe(&envelope),
            Input::Publish { items, trace } => self.on_publish(&items, trace),
        }?;
        self.flush_checkpoint()?;
        Ok(outs)
    }

    /// Marks the recovery record stale. Every subscription-state
    /// mutation calls this instead of sealing on the spot; the flag is
    /// flushed to at most **one** [`Broker::checkpoint`] at the end of
    /// the step, so an N-mutation step (a replayed-link reconciliation,
    /// a rebalancing pass) pays one seal ECALL instead of N.
    fn mark_dirty(&mut self) {
        if self.dirty {
            self.seals_saved += 1;
        } else {
            self.dirty = true;
        }
    }

    /// [`Broker::mark_dirty`], suppressed while rejoining: the replay
    /// burst arrives as one frame per step, and one mark at the end of
    /// each link's replay ([`Broker::reconcile_replay`]) covers it —
    /// re-sealing per replayed envelope would make recovery quadratic in
    /// the live set.
    fn mark_dirty_if_serving(&mut self) {
        if self.state == Lifecycle::Serving {
            self.mark_dirty();
        }
    }

    /// Seals the recovery record if this step mutated subscription
    /// state.
    fn flush_checkpoint(&mut self) -> Result<(), OverlayError> {
        if !self.dirty {
            return Ok(());
        }
        self.dirty = false;
        self.checkpoint()
    }

    fn require_serving(&self, what: &'static str) -> Result<(), OverlayError> {
        if self.state != Lifecycle::Serving {
            return Err(OverlayError::Lifecycle { reason: what });
        }
        Ok(())
    }

    fn require_traffic(&self) -> Result<(), OverlayError> {
        match self.state {
            Lifecycle::Serving | Lifecycle::Rejoining => Ok(()),
            _ => Err(OverlayError::Lifecycle { reason: "subscription frame outside serving" }),
        }
    }

    // ---- admin ---------------------------------------------------------

    /// Drops every piece of volatile state. The platform (machine), the
    /// host disk (sealed record), the measured binary and the trust
    /// anchors survive; everything else — enclave, keys, index, live
    /// set, covering tables, link keys, half-open handshakes — is gone.
    fn on_crash(&mut self) -> Result<Vec<Output>, OverlayError> {
        if self.state == Lifecycle::Crashed {
            return Ok(Vec::new()); // idempotent
        }
        self.enclave = None;
        let mem = MemorySim::native(CacheConfig::default(), CostModel::free());
        self.core =
            BrokerCore::fresh(&mem, self.kind, self.flood, &self.neighbors, self.partition.slices);
        // Telemetry is host configuration: the flag survives the crash,
        // but the flight recorder and stage histograms (volatile, never
        // sealed) restart empty with the rebuilt core.
        self.core.matcher.set_telemetry(self.telemetry);
        // Whatever was marked dirty this step died with the enclave; the
        // last *flushed* record on the host disk is the recovery truth.
        self.dirty = false;
        self.links.clear();
        self.initiations.clear();
        self.responses.clear();
        self.pending_replays.clear();
        self.requested.clear();
        self.confirmed.clear();
        self.dead_links.clear();
        self.last_rx.clear();
        self.last_hb.clear();
        self.gap_since.clear();
        self.suspects.clear();
        self.resync.clear();
        self.parked_replays.clear();
        self.initiated_at.clear();
        self.requested_at.clear();
        self.crashed_at = self.now;
        self.state = Lifecycle::Crashed;
        Ok(vec![Output::Event(LinkEvent::Crashed)])
    }

    /// Restarts a crashed broker: relaunch the enclave, unseal and
    /// restore the recovery record, enter `Rejoining`. Re-attestation
    /// (key provisioning) and link re-establishment follow as separate
    /// inputs, driven by the scheduler. Neighbours listed in
    /// `dead_links` are skipped entirely — no handshake, no replay; the
    /// rows toward them stay recorded, and consistency is restored when
    /// *they* rejoin and replay from us (their reconciliation
    /// `sub-drop`s cover removals we both missed).
    fn on_restart(&mut self, dead_links: &[usize]) -> Result<Vec<Output>, OverlayError> {
        if self.state != Lifecycle::Crashed {
            return Err(OverlayError::Lifecycle {
                reason: "restart of a broker that is not crashed",
            });
        }
        if let Some(platform) = &self.platform {
            // Relaunch the (same, identically measured) routing enclave.
            let enclave = platform.launch(router_builder(&self.code))?;
            let record = match (&self.sealed, self.counter) {
                (Some(blob), Some(counter)) => Some(enclave.ecall(|ctx| {
                    VersionedSeal::unseal(ctx, SealPolicy::MrEnclave, platform, counter, blob)
                })?),
                _ => None,
            };
            let core = BrokerCore::restore(
                record.as_deref(),
                enclave.memory(),
                self.kind,
                self.flood,
                &self.neighbors,
                self.partition.slices,
            )?;
            self.enclave = Some(enclave);
            self.core = core;
        } else {
            let mem = MemorySim::native(CacheConfig::default(), CostModel::free());
            self.core = BrokerCore::restore(
                self.sealed.clone().as_deref(),
                &mem,
                self.kind,
                self.flood,
                &self.neighbors,
                self.partition.slices,
            )?;
        }
        self.core.matcher.set_telemetry(self.telemetry);
        self.dirty = false;
        let restored = self.core.live.len();
        self.replayed_subs = 0;
        self.dropped_stale = 0;
        self.requested.clear();
        self.requested_at.clear();
        self.confirmed.clear();
        self.dead_links =
            dead_links.iter().copied().filter(|n| self.neighbors.contains(n)).collect();
        self.pending_replays =
            self.neighbors.iter().copied().filter(|n| !self.dead_links.contains(n)).collect();
        let mut outs = vec![Output::Event(LinkEvent::RejoinStarted { restored })];
        if self.pending_replays.is_empty() {
            // No (live) neighbours to replay from: recovery is the seal
            // alone.
            self.state = Lifecycle::Serving;
            outs.push(Output::Event(LinkEvent::Rejoined {
                replayed: 0,
                dropped_stale: 0,
                downtime: self.now.saturating_sub(self.crashed_at),
            }));
        } else {
            self.state = Lifecycle::Rejoining;
        }
        Ok(outs)
    }

    /// Timer tick, dispatched per lifecycle state. While linking or
    /// rejoining it drives handshake initiation and replay kick-off;
    /// while serving (with heartbeats configured) it runs the
    /// steady-state liveness work — heartbeat emission, dead-link
    /// probing and suspicion timeouts. Cold, attesting and crashed
    /// brokers have no timer work.
    fn on_tick(&mut self) -> Result<Vec<Output>, OverlayError> {
        self.ticks += 1;
        match self.state {
            Lifecycle::Cold | Lifecycle::Attesting | Lifecycle::Crashed => Ok(Vec::new()),
            Lifecycle::Linking => self.tick_handshakes(false),
            Lifecycle::Rejoining => {
                let mut outs = self.tick_handshakes(true)?;
                outs.extend(self.tick_replay_kickoff()?);
                Ok(outs)
            }
            Lifecycle::Serving => {
                self.maybe_rebalance()?;
                self.tick_serving()
            }
        }
    }

    /// Serving-tick arm of the rebalancing loop: on a partitioned
    /// matcher, run one [`BrokerCore::rebalance`] inside a single
    /// crossing — a no-op returning immediately while the skew is at or
    /// under [`PartitionConfig::skew_threshold`]. Anything migrated
    /// marks the record dirty (sealed once at the end of this step).
    /// Single-slice brokers skip the crossing entirely, keeping the
    /// legacy tick costs exact.
    fn maybe_rebalance(&mut self) -> Result<(), OverlayError> {
        if self.partition.slices <= 1 {
            return Ok(());
        }
        let (threshold, batch) = (self.partition.skew_threshold, self.partition.migration_batch);
        let report = self.call(|c| c.rebalance(threshold, batch))?;
        // One mark per migrated subscription: the whole pass coalesces
        // into one seal, and `seals_saved` records the per-mutation
        // seals it avoided.
        for _ in 0..report.migrated {
            self.mark_dirty();
        }
        Ok(())
    }

    /// Initiates pending link handshakes: at bring-up the lower id
    /// initiates each edge; a rejoining broker initiates every incident
    /// link, since only *it* lost the keys.
    fn tick_handshakes(&mut self, rejoining: bool) -> Result<Vec<Output>, OverlayError> {
        let mut outs = Vec::new();
        let targets: Vec<usize> = self
            .neighbors
            .iter()
            .copied()
            .filter(|n| {
                !self.links.contains_key(n)
                    && !self.initiations.contains_key(n)
                    && !self.responses.contains_key(n)
                    && !self.dead_links.contains(n)
                    && (rejoining || self.id < *n)
            })
            .collect();
        for neighbor in targets {
            let (wire, state) = self.initiate_handshake()?;
            self.initiations.insert(neighbor, state);
            self.initiated_at.insert(neighbor, self.ticks);
            outs.push(Output::Frame(LinkFrame { to: neighbor, from: self.id, bytes: wire }));
        }
        Ok(outs)
    }

    /// Plain links (pre-shared trust) need no handshake: a rejoining
    /// broker requests the replay as soon as the host has reinstalled
    /// them.
    fn tick_replay_kickoff(&mut self) -> Result<Vec<Output>, OverlayError> {
        let mut outs = Vec::new();
        let ready: Vec<usize> = self
            .pending_replays
            .iter()
            .copied()
            .filter(|n| self.links.contains_key(n) && !self.requested.contains(n))
            .collect();
        for neighbor in ready {
            self.requested.insert(neighbor);
            self.requested_at.insert(neighbor, self.ticks);
            let bytes = self.seal_to(neighbor, &Message::ReplayRequest.to_wire())?;
            outs.push(Output::Frame(LinkFrame { to: neighbor, from: self.id, bytes }));
        }
        Ok(outs)
    }

    /// Steady-state liveness work (with heartbeats disabled, a serving
    /// tick is still accepted but does nothing — the legacy behaviour).
    /// Per neighbour:
    ///
    /// * an established, trusted link gets a heartbeat every `interval`
    ///   ticks;
    /// * a believed-dead neighbour whose plain link the host reinstalled
    ///   is healed immediately (pull-replay — the stale-liveness-view
    ///   fix);
    /// * an unkeyed link is probed with a fresh handshake (attested
    ///   brokers; retried every `suspect_after` ticks);
    /// * a link wedged on a sequence gap past `gap_grace` is declared
    ///   [`SuspectReason::Gap`] and proactively re-keyed + resynced;
    /// * a link silent past `suspect_after` is declared
    ///   [`SuspectReason::Silence`] — the fabric aggregates these into
    ///   quorum and auto-restarts the peer.
    fn tick_serving(&mut self) -> Result<Vec<Output>, OverlayError> {
        let Some(config) = self.heartbeats else {
            return Ok(Vec::new());
        };
        let mut outs = Vec::new();
        let hb_wire = Message::Heartbeat.to_wire();
        for n in self.neighbors.clone() {
            // Every neighbour is on the liveness clock from its first
            // serving tick — silence toward a neighbour we have never
            // heard from (because it is dead) must accrue too.
            let seen = *self.last_rx.entry(n).or_insert(self.ticks);
            let keyed = self.links.contains_key(&n);
            if keyed && self.dead_links.contains(&n) {
                // Stale liveness view: the host reinstalled a plain link
                // to a neighbour we believed dead — it is reachable, so
                // reconcile what we missed while ignoring it.
                outs.extend(self.heal_dead_link(n)?);
                continue;
            }
            if keyed {
                let due = self.last_hb.get(&n).is_none_or(|&t| self.ticks - t >= config.interval);
                if due {
                    self.last_hb.insert(n, self.ticks);
                    self.heartbeats_sent += 1;
                    let bytes = self.seal_to(n, &hb_wire)?;
                    outs.push(Output::Frame(LinkFrame { to: n, from: self.id, bytes }));
                }
                if self.pending_replays.contains(&n) {
                    // An unanswered pull: the neighbour was dead (or
                    // still rejoining) when we asked. Re-send once the
                    // request outlives the suspicion window, so a heal
                    // attempted against a corpse completes when the
                    // corpse is itself fenced and restarted.
                    let stale = self
                        .requested_at
                        .get(&n)
                        .is_none_or(|&t| self.ticks - t >= config.suspect_after);
                    if stale {
                        self.requested.insert(n);
                        self.requested_at.insert(n, self.ticks);
                        let bytes = self.seal_to(n, &Message::ReplayRequest.to_wire())?;
                        outs.push(Output::Frame(LinkFrame { to: n, from: self.id, bytes }));
                    }
                }
            } else if self.platform.is_some() && !self.responses.contains_key(&n) {
                // No channel (the neighbour was dead at our restart, or
                // its key died with it): probe with a fresh handshake.
                // An unanswered probe is retried once its age exceeds
                // the suspicion window.
                let stale = self
                    .initiated_at
                    .get(&n)
                    .is_none_or(|&t| self.ticks - t >= config.suspect_after);
                if stale {
                    let (wire, state) = self.initiate_handshake()?;
                    self.initiations.insert(n, state);
                    self.initiated_at.insert(n, self.ticks);
                    outs.push(Output::Frame(LinkFrame { to: n, from: self.id, bytes: wire }));
                }
            }
            if self.suspects.contains(&n) {
                continue; // one Suspect per episode
            }
            if let Some(&since) = self.gap_since.get(&n) {
                if self.ticks - since >= config.gap_grace {
                    self.suspects.insert(n);
                    outs.push(Output::Event(LinkEvent::Suspect {
                        link: n,
                        reason: SuspectReason::Gap,
                    }));
                    // The peer is provably alive — gap frames
                    // authenticate — only the channel is wedged on lost
                    // frames. Heal at link level: re-key, then pull a
                    // replay on the fresh channel to recover whatever
                    // subscription traffic the gap swallowed.
                    if self.platform.is_some() && !self.initiations.contains_key(&n) {
                        self.resync.insert(n);
                        let (wire, state) = self.initiate_handshake()?;
                        self.initiations.insert(n, state);
                        self.initiated_at.insert(n, self.ticks);
                        outs.push(Output::Frame(LinkFrame { to: n, from: self.id, bytes: wire }));
                    }
                    continue;
                }
            }
            if self.ticks.saturating_sub(seen) >= config.suspect_after {
                self.suspects.insert(n);
                outs.push(Output::Event(LinkEvent::Suspect {
                    link: n,
                    reason: SuspectReason::Silence,
                }));
            }
        }
        Ok(outs)
    }

    /// A believed-dead neighbour turned out reachable: forget the dead
    /// mark and pull a replay over the link to pick up every interest
    /// change we missed while skipping it.
    fn heal_dead_link(&mut self, neighbor: usize) -> Result<Vec<Output>, OverlayError> {
        self.dead_links.remove(&neighbor);
        self.pending_replays.insert(neighbor);
        self.requested.insert(neighbor);
        self.requested_at.insert(neighbor, self.ticks);
        let bytes = self.seal_to(neighbor, &Message::ReplayRequest.to_wire())?;
        Ok(vec![Output::Frame(LinkFrame { to: neighbor, from: self.id, bytes })])
    }

    // ---- link handshake ------------------------------------------------

    fn initiate_handshake(&mut self) -> Result<(Vec<u8>, LinkInitiator), OverlayError> {
        let (Some(platform), Some(enclave)) = (&self.platform, &self.enclave) else {
            return Err(OverlayError::Link {
                reason: "link handshake requires an attested broker",
            });
        };
        let (hello, state) = sgx_sim::link::initiate(platform, enclave, &mut self.rng)?;
        Ok((Message::LinkHello { payload: hello.to_bytes() }.to_wire(), state))
    }

    /// Responds to a neighbour's hello after verifying its quote against
    /// the configured trust anchors.
    fn hs_hello(&mut self, from: usize, payload: &[u8]) -> Result<Vec<Output>, OverlayError> {
        if !self.neighbors.contains(&from) {
            return Err(OverlayError::Link { reason: "handshake from a non-neighbour" });
        }
        let hello = LinkHello::from_bytes(payload)?;
        let (Some(platform), Some(enclave)) = (&self.platform, &self.enclave) else {
            return Err(OverlayError::Link {
                reason: "link handshake requires an attested broker",
            });
        };
        let (Some(service), Some(policy)) = (&self.service, &self.policy) else {
            return Err(OverlayError::Link { reason: "link trust anchors not configured" });
        };
        let (accept, state) =
            sgx_sim::link::accept(platform, enclave, service, policy, &hello, &mut self.rng)?;
        self.responses.insert(from, state);
        Ok(vec![Output::Frame(LinkFrame {
            to: from,
            from: self.id,
            bytes: Message::LinkAccept { payload: accept.to_bytes() }.to_wire(),
        })])
    }

    /// Completes the initiator side: verify the responder's quote,
    /// derive the link key, install the sealed channels.
    fn hs_accept(&mut self, from: usize, payload: &[u8]) -> Result<Vec<Output>, OverlayError> {
        let Some(state) = self.initiations.remove(&from) else {
            return Err(OverlayError::Link { reason: "unexpected link-accept" });
        };
        let accept = LinkAccept::from_bytes(payload)?;
        let enclave =
            self.enclave.as_ref().ok_or(OverlayError::Link { reason: "broker has no enclave" })?;
        let (Some(service), Some(policy)) = (&self.service, &self.policy) else {
            return Err(OverlayError::Link { reason: "link trust anchors not configured" });
        };
        let (finish, key) =
            sgx_sim::link::finish(state, &accept, service, policy, enclave, &mut self.rng)?;
        self.install_sealed_link(from, &key);
        let mut outs = vec![Output::Frame(LinkFrame {
            to: from,
            from: self.id,
            bytes: Message::LinkFinish { payload: finish.to_bytes() }.to_wire(),
        })];
        outs.extend(self.post_link_up(from)?);
        Ok(outs)
    }

    /// Completes the responder side, deriving the same link key.
    fn hs_finish(&mut self, from: usize, payload: &[u8]) -> Result<Vec<Output>, OverlayError> {
        let Some(state) = self.responses.remove(&from) else {
            return Err(OverlayError::Link { reason: "unexpected link-finish" });
        };
        let finish = LinkFinish::from_bytes(payload)?;
        let enclave =
            self.enclave.as_ref().ok_or(OverlayError::Link { reason: "broker has no enclave" })?;
        let key = sgx_sim::link::complete(state, &finish, enclave)?;
        self.install_sealed_link(from, &key);
        self.post_link_up(from)
    }

    /// Bookkeeping after a sealed channel (re-)establishes: transition
    /// `Linking → Serving` once every neighbour is up, during a rejoin
    /// request the replay on the fresh channel, and while serving heal a
    /// believed-dead or gap-wedged link by pulling a replay over the new
    /// key. A fresh channel also retracts any standing suspicion.
    fn post_link_up(&mut self, link: usize) -> Result<Vec<Output>, OverlayError> {
        let mut outs = vec![Output::Event(LinkEvent::LinkUp { link })];
        if self.suspects.remove(&link) {
            outs.push(Output::Event(LinkEvent::Cleared { link }));
        }
        match self.state {
            Lifecycle::Linking if self.neighbors.iter().all(|n| self.links.contains_key(n)) => {
                self.state = Lifecycle::Serving;
            }
            Lifecycle::Rejoining
                if self.pending_replays.contains(&link) && self.requested.insert(link) =>
            {
                self.requested_at.insert(link, self.ticks);
                let bytes = self.seal_to(link, &Message::ReplayRequest.to_wire())?;
                outs.push(Output::Frame(LinkFrame { to: link, from: self.id, bytes }));
            }
            Lifecycle::Serving
                if self.dead_links.contains(&link) || self.resync.contains(&link) =>
            {
                self.resync.remove(&link);
                outs.extend(self.heal_dead_link(link)?);
            }
            _ => {}
        }
        Ok(outs)
    }

    // ---- frames --------------------------------------------------------

    fn on_frame(&mut self, from: usize, bytes: &[u8]) -> Result<Vec<Output>, OverlayError> {
        if matches!(self.state, Lifecycle::Cold | Lifecycle::Attesting | Lifecycle::Crashed) {
            return Err(OverlayError::Lifecycle {
                reason: "frame for a broker that is not linked",
            });
        }
        let opened = match self.links.get_mut(&from) {
            Some(LinkChannel::Sealed { inbound, .. }) => match inbound.open(bytes) {
                // The metadata word (a publication's trace id) rides in
                // clear but is AAD-bound, so a successful open vouches
                // for it.
                Ok(wire) => Opened::Wire { wire, meta: inbound.last_meta() },
                Err(NetError::Gap { expected, got }) => Opened::Gap { expected, got },
                Err(err) => Opened::Failed(err),
            },
            Some(LinkChannel::Plain) => Opened::Wire { wire: bytes.to_vec(), meta: 0 },
            None => Opened::NoChannel,
        };
        match opened {
            Opened::Wire { wire, meta } => {
                // An authentic frame is proof of life: refresh the
                // liveness clock and retract any standing suspicion.
                self.last_rx.insert(from, self.ticks);
                let cleared = self.suspects.remove(&from);
                let mut outs = self.dispatch_wire(from, &wire, meta)?;
                if cleared {
                    outs.insert(0, Output::Event(LinkEvent::Cleared { link: from }));
                }
                Ok(outs)
            }
            Opened::Gap { expected, got } => {
                self.gaps += 1;
                // A gap frame authenticates, so the *peer* is alive —
                // but the channel is wedged. Start (or keep) the
                // gap-grace clock; `tick_serving` escalates it to a
                // `Suspect { reason: Gap }` re-key if it outlives the
                // grace window.
                self.last_rx.insert(from, self.ticks);
                self.gap_since.entry(from).or_insert(self.ticks);
                Ok(vec![Output::Event(LinkEvent::Gap { link: from, expected, got })])
            }
            Opened::Failed(err) => {
                // Not a frame the sealed channel can open. A *restarted*
                // peer re-keys its links with plaintext handshake frames;
                // accept exactly those (each is quote-authenticated —
                // a forgery cannot complete the handshake, and the old
                // channel stays installed until the new key proves out).
                match Message::from_wire(bytes) {
                    Ok(Message::LinkHello { payload }) => self.hs_hello(from, &payload),
                    Ok(Message::LinkAccept { payload }) if self.initiations.contains_key(&from) => {
                        self.hs_accept(from, &payload)
                    }
                    Ok(Message::LinkFinish { payload }) if self.responses.contains_key(&from) => {
                        self.hs_finish(from, &payload)
                    }
                    _ => Err(err.into()),
                }
            }
            Opened::NoChannel => {
                if !self.neighbors.contains(&from) {
                    return Err(OverlayError::Link { reason: "no link to neighbour" });
                }
                match Message::from_wire(bytes) {
                    Ok(Message::LinkHello { payload }) => self.hs_hello(from, &payload),
                    Ok(Message::LinkAccept { payload }) => self.hs_accept(from, &payload),
                    Ok(Message::LinkFinish { payload }) => self.hs_finish(from, &payload),
                    _ if self.dead_links.contains(&from) || self.state == Lifecycle::Rejoining => {
                        // Sealed traffic under a key we no longer hold:
                        // either our liveness view is stale (the sender
                        // is alive and still using its pre-restart key
                        // toward us) or we are mid-rejoin and the sender
                        // has not re-keyed with us yet. Swallow the
                        // undecipherable frame — the probe/rejoin
                        // handshake heals the link.
                        Ok(Vec::new())
                    }
                    _ => Err(OverlayError::Link { reason: "no link to neighbour" }),
                }
            }
        }
    }

    fn dispatch_wire(
        &mut self,
        from: usize,
        wire: &[u8],
        meta: u64,
    ) -> Result<Vec<Output>, OverlayError> {
        match Message::from_wire(wire)? {
            Message::SubForward { envelope } => {
                self.require_traffic()?;
                // A link with an outstanding replay request is in replay
                // mode whatever our own lifecycle state: a rejoining
                // broker replays from every neighbour, a serving broker
                // replays over a single healed link.
                let replaying = self.pending_replays.contains(&from);
                let outcome = self.call(|c| c.admit(&envelope, Origin::Link(from), replaying))?;
                if replaying {
                    self.confirmed.entry(from).or_default().insert(outcome.id);
                    self.replayed_subs += 1;
                }
                let outs = self.forward_frames(&outcome, &envelope)?;
                // While replaying, one mark at the end of the link's
                // replay (reconcile_replay) covers the whole burst.
                if !replaying {
                    self.mark_dirty_if_serving();
                }
                Ok(outs)
            }
            Message::SubRemove { envelope } => {
                self.require_traffic()?;
                let outcome = self.call(|c| c.remove(&envelope, Origin::Link(from)))?;
                if !outcome.removed {
                    return Ok(Vec::new());
                }
                let wire = Message::SubRemove { envelope }.to_wire();
                let outs = self.removal_frames(outcome.links, &wire)?;
                self.mark_dirty_if_serving();
                Ok(outs)
            }
            Message::SubDrop { id } => {
                self.require_traffic()?;
                match self.call(|c| c.origin_of(id)) {
                    None => Ok(Vec::new()), // already gone: idempotent
                    Some(Origin::Link(l)) if l == from => {
                        let outcome = self.call(|c| c.remove_by_id(id, Origin::Link(from)));
                        let wire = Message::SubDrop { id }.to_wire();
                        let outs = self.removal_frames(outcome.links, &wire)?;
                        self.mark_dirty_if_serving();
                        Ok(outs)
                    }
                    Some(_) => Err(OverlayError::Link { reason: "sub-drop from wrong direction" }),
                }
            }
            Message::PublishBatch { items } => {
                self.require_serving("publication for a broker that is not serving")?;
                self.route_batch(&items, Origin::Link(from), TraceId(meta))
            }
            Message::Publish { header_ct, epoch, payload_ct } => {
                self.require_serving("publication for a broker that is not serving")?;
                let item = PublishItem { header_ct, epoch, payload_ct };
                self.route_batch(std::slice::from_ref(&item), Origin::Link(from), TraceId(meta))
            }
            Message::ReplayRequest => {
                if self.state != Lifecycle::Serving {
                    // A neighbour that rejoined concurrently with us is
                    // asking for a replay we cannot serve yet. Park the
                    // request — it drains the moment we reach Serving —
                    // so two adjacent brokers crashed in the same window
                    // both recover instead of wedging on each other.
                    self.parked_replays.insert(from);
                    return Ok(Vec::new());
                }
                self.serve_replay(from)
            }
            Message::ReplayDone { count } => self.reconcile_replay(from, count),
            Message::Heartbeat => {
                // Pure liveness beacon: opening it already refreshed
                // `last_rx`; there is nothing to route.
                Ok(Vec::new())
            }
            _ => Err(OverlayError::Link { reason: "unexpected message kind on link" }),
        }
    }

    /// Serves a replay towards `from`: re-send every subscription the
    /// neighbour should hold from us, closed with a count-carrying
    /// `ReplayDone` marker.
    fn serve_replay(&mut self, from: usize) -> Result<Vec<Output>, OverlayError> {
        let envelopes = self.call(|c| c.replay_rows(from));
        let count = envelopes.len() as u32;
        let mut outs = Vec::with_capacity(envelopes.len() + 1);
        for envelope in envelopes {
            let wire = Message::SubForward { envelope }.to_wire();
            let bytes = self.seal_to(from, &wire)?;
            outs.push(Output::Frame(LinkFrame { to: from, from: self.id, bytes }));
        }
        let bytes = self.seal_to(from, &Message::ReplayDone { count }.to_wire())?;
        outs.push(Output::Frame(LinkFrame { to: from, from: self.id, bytes }));
        Ok(outs)
    }

    /// Serves every replay request that arrived while we were not yet
    /// serving. Called on the Rejoining → Serving transition.
    fn drain_parked(&mut self) -> Result<Vec<Output>, OverlayError> {
        let parked = std::mem::take(&mut self.parked_replays);
        let mut outs = Vec::new();
        for neighbor in parked {
            if self.links.contains_key(&neighbor) {
                outs.extend(self.serve_replay(neighbor)?);
            }
        }
        Ok(outs)
    }

    /// Ends the replay from `from`: every restored subscription learnt
    /// from that link which the neighbour did *not* re-confirm was
    /// removed during the outage — drop it with full uncovering
    /// bookkeeping and propagate authenticated `sub-drop`s down the
    /// reverse path. When a rejoining broker's last neighbour finishes,
    /// start serving; a serving broker finishing a single healed link's
    /// replay reports `Healed` instead.
    fn reconcile_replay(&mut self, from: usize, count: u32) -> Result<Vec<Output>, OverlayError> {
        let healing = self.state == Lifecycle::Serving;
        if !(self.state == Lifecycle::Rejoining || healing) || !self.pending_replays.contains(&from)
        {
            return Err(OverlayError::Lifecycle { reason: "unexpected replay-done" });
        }
        let confirmed = self.confirmed.remove(&from).unwrap_or_default();
        if confirmed.len() != count as usize {
            return Err(OverlayError::Link { reason: "replay count mismatch" });
        }
        let stale: Vec<SubscriptionId> = self.call(|c| {
            c.live
                .iter()
                .filter(|(id, sub)| sub.origin == Origin::Link(from) && !confirmed.contains(id))
                .map(|(id, _)| *id)
                .collect()
        });
        let replayed_here = confirmed.len();
        let mut outs = Vec::new();
        for id in &stale {
            let outcome = self.call(|c| c.remove_by_id(*id, Origin::Link(from)));
            let wire = Message::SubDrop { id: *id }.to_wire();
            outs.extend(self.removal_frames(outcome.links, &wire)?);
            self.dropped_stale += 1;
            self.mark_dirty();
        }
        // One checkpoint per completed link replay: covers the replayed
        // admissions (whose per-frame marks are suppressed while
        // replaying) and the stale drops marked above.
        self.mark_dirty();
        self.pending_replays.remove(&from);
        self.requested.remove(&from);
        self.requested_at.remove(&from);
        if healing {
            outs.push(Output::Event(LinkEvent::Healed {
                link: from,
                replayed: replayed_here,
                dropped_stale: stale.len(),
            }));
        } else if self.pending_replays.is_empty() {
            self.state = Lifecycle::Serving;
            outs.push(Output::Event(LinkEvent::Rejoined {
                replayed: self.replayed_subs,
                dropped_stale: self.dropped_stale,
                downtime: self.now.saturating_sub(self.crashed_at),
            }));
            // Neighbours that rejoined concurrently with us asked for
            // their replays while we could not serve them: drain the
            // parked requests now that we can.
            outs.extend(self.drain_parked()?);
        }
        Ok(outs)
    }

    // ---- local traffic -------------------------------------------------

    fn on_subscribe(&mut self, envelope: &[u8]) -> Result<Vec<Output>, OverlayError> {
        self.require_serving("subscription for a broker that is not serving")?;
        let outcome = self.call(|c| c.admit(envelope, Origin::Local, false))?;
        let mut outs = self.forward_frames(&outcome, envelope)?;
        self.mark_dirty();
        outs.push(Output::Event(LinkEvent::Subscribed { id: outcome.id }));
        Ok(outs)
    }

    fn on_unsubscribe(&mut self, envelope: &[u8]) -> Result<Vec<Output>, OverlayError> {
        self.require_serving("unsubscription for a broker that is not serving")?;
        let outcome = self.call(|c| c.remove(envelope, Origin::Local))?;
        let mut outs = Vec::new();
        if outcome.removed {
            let wire = Message::SubRemove { envelope: envelope.to_vec() }.to_wire();
            outs = self.removal_frames(outcome.links, &wire)?;
            self.mark_dirty();
        }
        outs.push(Output::Event(LinkEvent::Unsubscribed {
            id: outcome.id,
            removed: outcome.removed,
        }));
        Ok(outs)
    }

    fn on_publish(
        &mut self,
        items: &[PublishItem],
        trace: TraceId,
    ) -> Result<Vec<Output>, OverlayError> {
        self.require_serving("publication for a broker that is not serving")?;
        self.route_batch(items, Origin::Local, trace)
    }

    /// Routes a batch of publications: decrypt+match the whole batch in
    /// [`MAX_DRAIN`]-bounded single enclave crossings, deliver locally,
    /// and forward each item on every matching link (origin excluded).
    ///
    /// With telemetry enabled the batch is timed through three waypoints
    /// (arrival, matched, forwarded) and committed as one
    /// [`HopRecord`] + two stage samples in a *single extra* enclave
    /// crossing at the end — the timestamps are read before that
    /// crossing, so the recording cost never pollutes the measurements,
    /// and with telemetry off the crossing count is exactly the
    /// uninstrumented one.
    fn route_batch(
        &mut self,
        items: &[PublishItem],
        origin: Origin,
        trace: TraceId,
    ) -> Result<Vec<Output>, OverlayError> {
        let timing = self.telemetry;
        let t_arrival = if timing { self.mem_elapsed_ns() } else { 0.0 };
        let mut matched_here = 0usize;
        // lint: allow(SL03, owned output construction - deliveries and frames leave this fn)
        let mut outs = Vec::new();
        // Per-link outgoing batches, in ascending neighbour order.
        let mut outgoing: BTreeMap<usize, Vec<PublishItem>> = BTreeMap::new();
        for chunk in items.chunks(MAX_DRAIN) {
            // lint: allow(SL03, per-chunk header slice list - bounded by MAX_DRAIN)
            let headers: Vec<&[u8]> = chunk.iter().map(|i| i.header_ct.as_slice()).collect();
            let decisions = self
                // lint: allow(SL03, decisions cross the enclave boundary by value)
                .call(|c| c.route(&headers, origin).into_iter().collect::<Result<Vec<_>, _>>())?;
            for (item, decision) in chunk.iter().zip(decisions) {
                matched_here += decision.locals.len();
                for client in decision.locals {
                    outs.push(Output::Delivery(LocalDelivery {
                        router: self.id,
                        client,
                        // lint: allow(SL03, each local delivery owns its item copy)
                        item: item.clone(),
                    }));
                }
                for neighbor in decision.links {
                    // lint: allow(SL03, per-link batch owns its item copy)
                    outgoing.entry(neighbor).or_default().push(item.clone());
                }
            }
        }
        let t_matched = if timing { self.mem_elapsed_ns() } else { 0.0 };
        for (neighbor, items) in outgoing {
            if !self.links.contains_key(&neighbor) {
                // Matching interest toward a dead (not yet re-keyed)
                // neighbour: the frame would be dropped on the floor
                // anyway — lose it here, like the wire would.
                continue;
            }
            let wire = Message::PublishBatch { items }.to_wire();
            let bytes = self.seal_to_meta(neighbor, &wire, trace.0)?;
            outs.push(Output::Frame(LinkFrame { to: neighbor, from: self.id, bytes }));
        }
        if timing {
            let t_forwarded = self.mem_elapsed_ns();
            let record = HopRecord {
                trace,
                broker: self.id as u64,
                tick: self.now,
                arrival_ns: t_arrival.max(0.0) as u64,
                match_ns: t_matched.max(0.0) as u64,
                forward_ns: t_forwarded.max(0.0) as u64,
                // Only the log₂ bucket crosses the boundary: the exact
                // matched count would leak subscription selectivity.
                matched_bucket: count_bucket(matched_here),
            };
            let seal_ns = (t_forwarded - t_matched).max(0.0) as u64;
            let hop_ns = (t_forwarded - t_arrival).max(0.0) as u64;
            self.call(|c| {
                c.stages.record(Stage::Seal, seal_ns);
                c.stages.record(Stage::HopCrossing, hop_ns);
                if record.trace.is_some() {
                    c.recorder.push(record);
                }
            });
        }
        Ok(outs)
    }

    // ---- frame builders ------------------------------------------------

    /// Seals one `SubForward` per link the admission propagates on.
    /// Links without an established channel (a neighbour declared dead
    /// at restart, not yet re-keyed) are skipped: the interest is
    /// recorded in the covering table, and the neighbour's own rejoin
    /// replay will fetch it.
    fn forward_frames(
        &mut self,
        outcome: &AdmitOutcome,
        envelope: &[u8],
    ) -> Result<Vec<Output>, OverlayError> {
        let wire = Message::SubForward { envelope: envelope.to_vec() }.to_wire();
        let mut outs = Vec::with_capacity(outcome.forward_to.len());
        for &neighbor in &outcome.forward_to {
            if !self.links.contains_key(&neighbor) {
                continue;
            }
            let bytes = self.seal_to(neighbor, &wire)?;
            outs.push(Output::Frame(LinkFrame { to: neighbor, from: self.id, bytes }));
        }
        Ok(outs)
    }

    /// Seals a removal's traffic per affected link: first the
    /// `SubForward`s of newly *uncovered* subscriptions
    /// (make-before-break — the upstream covering set never dips below
    /// the live interest), then the removal itself (`terminal`: a
    /// `SubRemove` or `SubDrop` wire), which recurses at the next hop.
    fn removal_frames(
        &mut self,
        links: Vec<LinkRemoval>,
        terminal: &[u8],
    ) -> Result<Vec<Output>, OverlayError> {
        let mut outs = Vec::new();
        for link in links {
            if !self.links.contains_key(&link.neighbor) {
                // Dead neighbour, no channel yet: its rejoin replay will
                // see the updated table instead of these frames.
                continue;
            }
            for envelope in &link.uncovered {
                let wire = Message::SubForward { envelope: envelope.clone() }.to_wire();
                let bytes = self.seal_to(link.neighbor, &wire)?;
                outs.push(Output::Frame(LinkFrame { to: link.neighbor, from: self.id, bytes }));
            }
            let bytes = self.seal_to(link.neighbor, terminal)?;
            outs.push(Output::Frame(LinkFrame { to: link.neighbor, from: self.id, bytes }));
        }
        Ok(outs)
    }

    /// Re-seals the recovery record after a subscription-state mutation:
    /// serialise inside the enclave, seal under the platform key bound
    /// to a fresh monotonic-counter value (so every older record is
    /// rollback-detected), and hand the blob to the host disk. Without a
    /// platform (pre-shared trust) the record is stored unsealed.
    /// Reached only through [`Broker::flush_checkpoint`] (and the forced
    /// [`Broker::rebalance_now`]), so each step seals at most once.
    fn checkpoint(&mut self) -> Result<(), OverlayError> {
        self.seals += 1;
        match (&self.enclave, &self.platform, self.counter) {
            (Some(enclave), Some(platform), Some(counter)) => {
                let core = &self.core;
                let rng = &mut self.rng;
                let blob = enclave.ecall(|ctx| {
                    let record = core.serialize_record();
                    VersionedSeal::seal(ctx, SealPolicy::MrEnclave, platform, counter, &record, rng)
                })?;
                self.sealed = Some(blob);
            }
            _ => {
                self.sealed = Some(self.core.serialize_record());
            }
        }
        Ok(())
    }

    // ---- inspection ----------------------------------------------------

    /// Live subscriptions in the index (edge clients + link interfaces),
    /// summed over matcher slices.
    pub fn subscriptions(&self) -> usize {
        self.core.matcher.subscriptions()
    }

    /// Counters for this broker.
    pub fn stats(&self) -> BrokerStats {
        let mem = self.core.matcher.memory().stats();
        let (mut forwarded, mut pruned) = (0u64, 0u64);
        let (mut forwarded_total, mut removed, mut uncovered) = (0u64, 0u64, 0u64);
        for (_, table) in &self.core.upstream {
            forwarded += table.forwarded() as u64;
            pruned += table.pruned();
            forwarded_total += table.forwarded_total();
            removed += table.removed();
            uncovered += table.uncovered();
        }
        BrokerStats {
            router: self.id,
            state: self.state,
            subscriptions: self.core.matcher.subscriptions(),
            ecalls: mem.ecalls,
            ocalls: mem.ocalls,
            elapsed_ns: mem.elapsed_ns,
            forwarded,
            pruned,
            forwarded_total,
            removed,
            uncovered,
            gaps: self.gaps,
            heartbeats: self.heartbeats_sent,
            seals: self.seals,
            seals_saved: self.seals_saved,
        }
    }

    // ---- partitioning --------------------------------------------------

    /// Matcher slices in this broker (1 = unpartitioned).
    pub fn slice_count(&self) -> usize {
        self.core.matcher.slice_count()
    }

    /// Max-over-mean edge occupancy across matcher slices (1.0 when
    /// single-slice, balanced or empty). Link-interface copies are
    /// excluded: they are pinned to the broker that owns the link, so
    /// counting them would read a high-degree broker as permanently
    /// skewed and trigger futile rebalancing.
    pub fn occupancy_skew(&self) -> f64 {
        self.core.matcher.occupancy_skew()
    }

    /// Subscriptions migrated between slices over the broker's lifetime
    /// (volatile — restarts at zero with the rebuilt core).
    pub fn migrations(&self) -> u64 {
        self.core.matcher.migrations()
    }

    /// Per-slice occupancy stats in the cluster schema
    /// ([`SliceStats`]); `lifetime_ecalls` is `None` — the slices share
    /// the broker's single call gate, so per-slice crossings are not
    /// attributable.
    pub fn slice_stats(&self) -> Vec<SliceStats> {
        self.core.matcher.slice_stats()
    }

    /// Forces one synchronous rebalancing run (all passes inside a
    /// single enclave crossing), sealing the record immediately when
    /// anything moved. The serving tick runs the same loop
    /// automatically; this is the operator override.
    ///
    /// # Errors
    ///
    /// Lifecycle (not serving) or migration failures.
    pub fn rebalance_now(&mut self) -> Result<RebalanceReport, OverlayError> {
        self.require_serving("rebalance for a broker that is not serving")?;
        let (threshold, batch) = (self.partition.skew_threshold, self.partition.migration_batch);
        let report = self.call(|c| c.rebalance(threshold, batch))?;
        if report.migrated > 0 {
            // All migrations share one seal; count the avoided ones.
            self.seals_saved += report.migrated as u64 - 1;
            self.checkpoint()?;
        }
        Ok(report)
    }

    // ---- telemetry -----------------------------------------------------

    /// Enables or disables hot-path telemetry (host configuration,
    /// survives crashes). On: per-stage latency histograms, hop records
    /// for traced publications, and one extra enclave crossing per
    /// routed batch to commit them. Off (the default): the hot path is
    /// byte-for-byte the uninstrumented one.
    pub fn set_telemetry(&mut self, on: bool) {
        self.telemetry = on;
        self.core.matcher.set_telemetry(on);
    }

    /// Whether hot-path telemetry is enabled.
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry
    }

    /// Per-stage latency summaries: the in-enclave engine stages
    /// (decrypt, index match, ASPE gate — per slice, in slice order)
    /// followed by the broker shell's (seal, hop crossing). Empty with
    /// telemetry off.
    pub fn stage_summaries(&self) -> Vec<StageSummary> {
        let mut out = self.core.matcher.stage_summaries();
        out.extend(self.core.stages.summaries());
        out
    }

    /// Drains the in-enclave flight recorder through an explicit,
    /// costed ocall (the records leave the enclave exactly once, and
    /// the exit is charged like any other). Plain brokers drain
    /// directly. Returns the hop records in arrival order.
    pub fn drain_trace(&mut self) -> Vec<HopRecord> {
        let core = &mut self.core;
        match &self.enclave {
            Some(enclave) => enclave.ecall(|ctx| {
                let records = core.recorder.drain();
                ctx.ocall(move || records)
            }),
            None => core.recorder.drain(),
        }
    }

    /// Hop records the bounded flight recorder overwrote before they
    /// were drained (cumulative).
    pub fn trace_drops(&self) -> u64 {
        self.core.recorder.dropped()
    }

    /// The broker's memory-simulator counters (paging, cache, enclave
    /// transitions).
    pub fn mem_stats(&self) -> MemStats {
        self.core.matcher.memory().stats()
    }

    /// Per-link forwarding-table counter snapshots, keyed by neighbour
    /// id, for the metrics registry.
    pub fn link_snapshots(&self) -> Vec<(usize, Vec<(&'static str, u64)>)> {
        self.core.upstream.iter().map(|(n, table)| (*n, table.snapshot())).collect()
    }

    /// True when the broker is fully caught up: serving, with no replay
    /// in flight, no believed-dead links, and no unhealed gap. The
    /// fabric's detection loop runs until every broker settles.
    pub fn settled(&self) -> bool {
        self.state == Lifecycle::Serving
            && self.pending_replays.is_empty()
            && self.dead_links.is_empty()
            && self.gap_since.is_empty()
    }

    /// Resets the broker's memory counters (between measurement phases).
    /// Cumulative protocol counters (forwarding ledger, gaps) are not
    /// reset.
    pub fn reset_counters(&self) {
        self.core.matcher.memory().reset_counters();
    }
}

/// The canonical routing-enclave builder: all genuine overlay routers
/// share this measurement (`code` is the measured routing binary).
pub fn router_builder(code: &[u8]) -> EnclaveBuilder {
    EnclaveBuilder::new("scbr-overlay-router").add_page(code).isv_prod_id(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scbr::ids::KeyEpoch;
    use scbr::{PublicationSpec, SubscriptionSpec};

    fn producer(rng: &mut CryptoRng) -> ProducerCrypto {
        ProducerCrypto::generate(512, rng).unwrap()
    }

    fn frames(outputs: &[Output]) -> Vec<&LinkFrame> {
        outputs
            .iter()
            .filter_map(|o| match o {
                Output::Frame(f) => Some(f),
                _ => None,
            })
            .collect()
    }

    fn deliveries(outputs: &[Output]) -> Vec<&LocalDelivery> {
        outputs
            .iter()
            .filter_map(|o| match o {
                Output::Delivery(d) => Some(d),
                _ => None,
            })
            .collect()
    }

    fn item(producer: &ProducerCrypto, spec: &PublicationSpec, rng: &mut CryptoRng) -> PublishItem {
        PublishItem {
            header_ct: producer.encrypt_header(spec, rng),
            epoch: KeyEpoch(0),
            payload_ct: vec![0xaa],
        }
    }

    #[test]
    fn link_interface_encoding() {
        let iface = link_interface(5);
        assert_eq!(iface.0 & LINK_INTERFACE_BIT, LINK_INTERFACE_BIT);
        assert_eq!(iface.0 & !LINK_INTERFACE_BIT, 5);
    }

    #[test]
    fn preshared_broker_admits_and_routes_through_step() {
        let mut rng = CryptoRng::from_seed(1);
        let producer = producer(&mut rng);
        let mut broker = Broker::preshared(0, 1, IndexKind::Poset, false);
        broker.set_neighbors(&[1, 2]);
        broker.install_plain_link(1);
        broker.install_plain_link(2);
        assert_eq!(broker.lifecycle(), Lifecycle::Cold);
        broker.provision_preshared(&producer);
        assert_eq!(broker.lifecycle(), Lifecycle::Serving);

        // A local subscription propagates to both neighbours.
        let spec = SubscriptionSpec::new().gt("price", 10.0);
        let envelope =
            producer.seal_registration(&spec, SubscriptionId(1), ClientId(7), &mut rng).unwrap();
        let outs = broker.step(0, Input::Subscribe { envelope }).unwrap();
        assert_eq!(frames(&outs).iter().map(|f| f.to).collect::<Vec<_>>(), vec![1, 2]);
        assert!(outs
            .iter()
            .any(|o| matches!(o, Output::Event(LinkEvent::Subscribed { id }) if id.0 == 1)));

        // A covered subscription from link 1 is pruned towards 2 but the
        // index still records it (for reverse-path delivery).
        let narrow = SubscriptionSpec::new().gt("price", 50.0);
        let envelope2 =
            producer.seal_registration(&narrow, SubscriptionId(2), ClientId(8), &mut rng).unwrap();
        let wire = Message::SubForward { envelope: envelope2 }.to_wire();
        let outs = broker.step(1, Input::Frame { from: 1, bytes: wire }).unwrap();
        assert!(frames(&outs).is_empty(), "covered subscription is pruned");
        assert_eq!(broker.subscriptions(), 2);
        assert_eq!(broker.stats().pruned, 1);

        // Publications from a link split into local delivery + link
        // forwarding; the origin link is excluded.
        let publication = PublicationSpec::new().attr("price", 60.0);
        let batch = Message::PublishBatch { items: vec![item(&producer, &publication, &mut rng)] }
            .to_wire();
        let outs = broker.step(2, Input::Frame { from: 2, bytes: batch }).unwrap();
        let delivered = deliveries(&outs);
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].client, ClientId(7));
        // price>10 came locally; price>50 came from link 1 → forward to 1.
        let fwd = frames(&outs);
        assert_eq!(fwd.len(), 1);
        assert_eq!(fwd[0].to, 1);
    }

    #[test]
    fn flood_mode_skips_pruning() {
        let mut rng = CryptoRng::from_seed(2);
        let producer = producer(&mut rng);
        let mut broker = Broker::preshared(0, 2, IndexKind::Poset, true);
        broker.set_neighbors(&[1]);
        broker.install_plain_link(1);
        broker.provision_preshared(&producer);
        for (i, spec) in
            [SubscriptionSpec::new().gt("price", 0.0), SubscriptionSpec::new().gt("price", 10.0)]
                .iter()
                .enumerate()
        {
            let envelope = producer
                .seal_registration(spec, SubscriptionId(i as u64), ClientId(i as u64), &mut rng)
                .unwrap();
            let outs = broker.step(i as u64, Input::Subscribe { envelope }).unwrap();
            assert_eq!(frames(&outs).len(), 1, "flood forwards everything");
        }
    }

    #[test]
    fn removing_a_covering_sub_uncovers_and_reforwards() {
        let mut rng = CryptoRng::from_seed(5);
        let producer = producer(&mut rng);
        let mut broker = Broker::preshared(0, 5, IndexKind::Poset, false);
        broker.set_neighbors(&[1]);
        broker.install_plain_link(1);
        broker.provision_preshared(&producer);

        let broad = producer
            .seal_registration(
                &SubscriptionSpec::new().gt("price", 0.0),
                SubscriptionId(1),
                ClientId(1),
                &mut rng,
            )
            .unwrap();
        let narrow = producer
            .seal_registration(
                &SubscriptionSpec::new().gt("price", 10.0),
                SubscriptionId(2),
                ClientId(2),
                &mut rng,
            )
            .unwrap();
        let outs = broker.step(0, Input::Subscribe { envelope: broad }).unwrap();
        assert_eq!(frames(&outs).len(), 1, "broad forwards");
        let outs = broker.step(1, Input::Subscribe { envelope: narrow }).unwrap();
        assert!(frames(&outs).is_empty(), "narrow is pruned under broad");

        // Removing the broad one uncovers the narrow one: the link sees a
        // SubForward (narrow) *then* a SubRemove (broad).
        let unreg = producer.seal_unregistration(SubscriptionId(1), ClientId(1), &mut rng).unwrap();
        let outs = broker.step(2, Input::Unsubscribe { envelope: unreg }).unwrap();
        assert!(outs.iter().any(|o| matches!(
            o,
            Output::Event(LinkEvent::Unsubscribed { id, removed: true }) if id.0 == 1
        )));
        let kinds: Vec<String> = frames(&outs)
            .iter()
            .map(|f| Message::from_wire(&f.bytes).unwrap().kind().to_owned())
            .collect();
        assert_eq!(kinds, vec!["sub-forward", "sub-remove"], "make-before-break ordering");
        let stats = broker.stats();
        assert_eq!(stats.uncovered, 1);
        assert_eq!(stats.removed, 1);
        assert_eq!(stats.forwarded, stats.forwarded_total - stats.removed);
        assert_eq!(broker.subscriptions(), 1, "only the narrow subscription remains");
    }

    #[test]
    fn serving_tick_dispatches_liveness_work() {
        // Regression: `Input::Tick` used to early-return unless the
        // broker was Linking or Rejoining, so a Serving broker could
        // never run steady-state timer work.
        let mut rng = CryptoRng::from_seed(11);
        let producer = producer(&mut rng);
        let mut broker = Broker::preshared(0, 11, IndexKind::Poset, false);
        broker.set_neighbors(&[1]);
        broker.install_plain_link(1);
        broker.provision_preshared(&producer);
        assert_eq!(broker.lifecycle(), Lifecycle::Serving);

        // Without heartbeats configured, a serving tick stays a no-op
        // (the legacy behaviour).
        assert!(broker.step(0, Input::Tick).unwrap().is_empty());

        broker.set_heartbeats(Some(HeartbeatConfig::fast()));
        let outs = broker.step(1, Input::Tick).unwrap();
        let hb = frames(&outs);
        assert_eq!(hb.len(), 1, "one heartbeat on the established link");
        assert_eq!(hb[0].to, 1);
        assert!(matches!(Message::from_wire(&hb[0].bytes).unwrap(), Message::Heartbeat));
        assert_eq!(broker.stats().heartbeats, 1);

        // The neighbour stays silent: after `suspect_after` silent ticks
        // the link is declared suspect, exactly once per episode.
        let mut suspects = Vec::new();
        for now in 2..10u64 {
            let outs = broker.step(now, Input::Tick).unwrap();
            suspects.extend(outs.iter().filter_map(|o| match o {
                Output::Event(LinkEvent::Suspect { link, reason }) => Some((*link, *reason)),
                _ => None,
            }));
        }
        assert_eq!(suspects, vec![(1, SuspectReason::Silence)], "one accusation per episode");

        // An authentic inbound frame retracts the accusation.
        let outs =
            broker.step(10, Input::Frame { from: 1, bytes: Message::Heartbeat.to_wire() }).unwrap();
        assert!(
            outs.iter().any(|o| matches!(o, Output::Event(LinkEvent::Cleared { link: 1 }))),
            "proof of life clears the suspect, got {outs:?}"
        );
    }

    #[test]
    fn re_registration_reforwards_only_when_the_filter_changed() {
        // Two linked brokers: a (edge) — b. A re-registered id with a
        // *broader* filter must replace the upstream copy, or b keeps
        // matching the stale narrow spec and drops deliveries. An
        // *unchanged* re-registration (the neighbour-replay case) must
        // stay silent.
        let mut rng = CryptoRng::from_seed(7);
        let producer = producer(&mut rng);
        let mut a = Broker::preshared(0, 7, IndexKind::Poset, false);
        let mut b = Broker::preshared(1, 8, IndexKind::Poset, false);
        a.set_neighbors(&[1]);
        b.set_neighbors(&[0]);
        a.install_plain_link(1);
        b.install_plain_link(0);
        a.provision_preshared(&producer);
        b.provision_preshared(&producer);

        let narrow = producer
            .seal_registration(
                &SubscriptionSpec::new().gt("price", 10.0),
                SubscriptionId(1),
                ClientId(1),
                &mut rng,
            )
            .unwrap();
        let outs = a.step(0, Input::Subscribe { envelope: narrow.clone() }).unwrap();
        for f in frames(&outs) {
            b.step(0, Input::Frame { from: f.from, bytes: f.bytes.clone() }).unwrap();
        }

        // Same id, same filter: the upstream copy is already exact.
        let outs = a.step(1, Input::Subscribe { envelope: narrow }).unwrap();
        assert!(frames(&outs).is_empty(), "unchanged re-registration stays silent");

        // Same id, broader filter: must travel again and replace b's copy.
        let broad = producer
            .seal_registration(
                &SubscriptionSpec::new().gt("price", 0.0),
                SubscriptionId(1),
                ClientId(1),
                &mut rng,
            )
            .unwrap();
        let outs = a.step(2, Input::Subscribe { envelope: broad }).unwrap();
        assert_eq!(frames(&outs).len(), 1, "the replacement is re-forwarded");
        for f in frames(&outs) {
            b.step(2, Input::Frame { from: f.from, bytes: f.bytes.clone() }).unwrap();
        }
        assert_eq!(a.subscriptions(), 1, "replaced, not duplicated");
        assert_eq!(b.subscriptions(), 1, "replaced, not duplicated");

        // A publication matching only the broad spec, entering at b, must
        // now cross the link and deliver at a.
        let outs = b
            .step(
                3,
                Input::Publish {
                    items: vec![item(
                        &producer,
                        &PublicationSpec::new().attr("price", 5.0),
                        &mut rng,
                    )],
                    trace: TraceId::NONE,
                },
            )
            .unwrap();
        let fwd = frames(&outs);
        assert_eq!(fwd.len(), 1, "b forwards under the replaced (broad) spec");
        let outs = a.step(3, Input::Frame { from: 1, bytes: fwd[0].bytes.clone() }).unwrap();
        let local = deliveries(&outs);
        assert_eq!(local.len(), 1);
        assert_eq!(local[0].client, ClientId(1));
    }

    #[test]
    fn pruned_removal_is_silent_and_double_remove_is_idempotent() {
        let mut rng = CryptoRng::from_seed(6);
        let producer = producer(&mut rng);
        let mut broker = Broker::preshared(0, 6, IndexKind::Poset, false);
        broker.set_neighbors(&[1]);
        broker.install_plain_link(1);
        broker.provision_preshared(&producer);
        let broad = producer
            .seal_registration(
                &SubscriptionSpec::new().gt("price", 0.0),
                SubscriptionId(1),
                ClientId(1),
                &mut rng,
            )
            .unwrap();
        let narrow = producer
            .seal_registration(
                &SubscriptionSpec::new().gt("price", 10.0),
                SubscriptionId(2),
                ClientId(2),
                &mut rng,
            )
            .unwrap();
        broker.step(0, Input::Subscribe { envelope: broad }).unwrap();
        broker.step(1, Input::Subscribe { envelope: narrow }).unwrap();

        // The narrow sub was pruned: its removal must not touch the link.
        let unreg = producer.seal_unregistration(SubscriptionId(2), ClientId(2), &mut rng).unwrap();
        let outs = broker.step(2, Input::Unsubscribe { envelope: unreg }).unwrap();
        assert!(frames(&outs).is_empty(), "a pruned removal generates no network traffic");
        assert_eq!(broker.subscriptions(), 1);

        // Removing it again: idempotent, no error, still silent.
        let unreg2 =
            producer.seal_unregistration(SubscriptionId(2), ClientId(2), &mut rng).unwrap();
        let outs = broker.step(3, Input::Unsubscribe { envelope: unreg2 }).unwrap();
        assert!(frames(&outs).is_empty());
        assert!(outs
            .iter()
            .any(|o| matches!(o, Output::Event(LinkEvent::Unsubscribed { removed: false, .. }))));

        // A forged unregistration is refused outright.
        let rogue = ProducerCrypto::generate(512, &mut rng).unwrap();
        let forged = rogue.seal_unregistration(SubscriptionId(1), ClientId(1), &mut rng).unwrap();
        assert!(broker.step(4, Input::Unsubscribe { envelope: forged }).is_err());
        assert_eq!(broker.subscriptions(), 1, "forgery removed nothing");
    }

    #[test]
    fn attested_broker_counts_one_crossing_per_batch() {
        let mut rng = CryptoRng::from_seed(3);
        let producer = producer(&mut rng);
        let mut broker = Broker::attested(0, 33, IndexKind::Poset, b"router v1", false).unwrap();
        broker.set_neighbors(&[]);
        // Install keys directly (attestation is exercised in the fabric
        // tests; this test is about crossing accounting).
        broker.provision_preshared(&producer);
        let envelope = producer
            .seal_registration(
                &SubscriptionSpec::new().gt("p", 1.0),
                SubscriptionId(1),
                ClientId(1),
                &mut rng,
            )
            .unwrap();
        broker.step(0, Input::Subscribe { envelope }).unwrap();
        broker.reset_counters();
        let items: Vec<PublishItem> = (0..10)
            .map(|i| item(&producer, &PublicationSpec::new().attr("p", 2.0 + i as f64), &mut rng))
            .collect();
        let outs = broker.step(1, Input::Publish { items, trace: TraceId::NONE }).unwrap();
        assert_eq!(deliveries(&outs).len(), 10);
        assert!(frames(&outs).is_empty());
        assert_eq!(broker.stats().ecalls, 1, "whole batch in one crossing");
    }

    #[test]
    fn lifecycle_gates_inputs() {
        let mut rng = CryptoRng::from_seed(9);
        let producer = producer(&mut rng);
        let mut broker = Broker::preshared(0, 9, IndexKind::Poset, false);
        let envelope = producer
            .seal_registration(
                &SubscriptionSpec::new().gt("p", 1.0),
                SubscriptionId(1),
                ClientId(1),
                &mut rng,
            )
            .unwrap();
        // Cold: no traffic.
        assert!(matches!(
            broker.step(0, Input::Subscribe { envelope: envelope.clone() }),
            Err(OverlayError::Lifecycle { .. })
        ));
        // Restart only applies to a crashed broker.
        assert!(matches!(
            broker.step(0, Input::Restart { dead_links: vec![] }),
            Err(OverlayError::Lifecycle { .. })
        ));
        broker.provision_preshared(&producer);
        broker.step(1, Input::Subscribe { envelope }).unwrap();
        // Crash is idempotent; crashed brokers refuse traffic.
        broker.step(2, Input::Crash).unwrap();
        assert_eq!(broker.lifecycle(), Lifecycle::Crashed);
        assert!(broker.step(3, Input::Crash).unwrap().is_empty());
        assert!(matches!(
            broker.step(4, Input::Publish { items: vec![], trace: TraceId::NONE }),
            Err(OverlayError::Lifecycle { .. })
        ));
        assert!(matches!(
            broker.step(5, Input::Frame { from: 1, bytes: vec![1] }),
            Err(OverlayError::Lifecycle { .. })
        ));
        // Ticks are always safe.
        assert!(broker.step(6, Input::Tick).unwrap().is_empty());
    }

    #[test]
    fn crash_drops_volatile_state_and_restart_restores_from_the_record() {
        // A neighbour-less broker: recovery comes from the (sealed)
        // record alone, so the restart transitions straight to Serving.
        let mut rng = CryptoRng::from_seed(10);
        let producer = producer(&mut rng);
        let mut broker = Broker::preshared(0, 10, IndexKind::Poset, false);
        broker.provision_preshared(&producer);
        for i in 0..3u64 {
            let envelope = producer
                .seal_registration(
                    &SubscriptionSpec::new().gt("p", i as f64),
                    SubscriptionId(i),
                    ClientId(i),
                    &mut rng,
                )
                .unwrap();
            broker.step(i, Input::Subscribe { envelope }).unwrap();
        }
        assert_eq!(broker.subscriptions(), 3);
        broker.step(10, Input::Crash).unwrap();
        assert_eq!(broker.subscriptions(), 0, "volatile state is gone");
        let outs = broker.step(20, Input::Restart { dead_links: vec![] }).unwrap();
        assert!(outs
            .iter()
            .any(|o| matches!(o, Output::Event(LinkEvent::RejoinStarted { restored: 3 }))));
        assert!(outs.iter().any(|o| matches!(
            o,
            Output::Event(LinkEvent::Rejoined { replayed: 0, dropped_stale: 0, downtime: 10 })
        )));
        assert_eq!(broker.lifecycle(), Lifecycle::Serving);
        // Keys are volatile: the host must re-provision before traffic.
        broker.provision_preshared(&producer);
        let outs = broker
            .step(
                21,
                Input::Publish {
                    items: vec![item(&producer, &PublicationSpec::new().attr("p", 2.5), &mut rng)],
                    trace: TraceId::NONE,
                },
            )
            .unwrap();
        assert_eq!(deliveries(&outs).len(), 3, "restored index matches as before the crash");
    }

    #[test]
    fn frames_on_unknown_links_are_refused() {
        let mut rng = CryptoRng::from_seed(4);
        let producer = producer(&mut rng);
        let mut broker = Broker::preshared(0, 4, IndexKind::Poset, false);
        broker.provision_preshared(&producer);
        assert!(matches!(
            broker.step(0, Input::Frame { from: 9, bytes: b"junk".to_vec() }),
            Err(OverlayError::Link { reason: "no link to neighbour" })
        ));
    }

    /// Runs the same subscribe/publish script against a broker and
    /// returns the sorted delivered-client multiset per publication
    /// batch.
    fn routing_fingerprint(broker: &mut Broker, rng: &mut CryptoRng) -> Vec<Vec<ClientId>> {
        let producer = producer(rng);
        broker.provision_preshared(&producer);
        for i in 0..12u64 {
            let spec = SubscriptionSpec::new().gt("price", (i % 4) as f64 * 25.0);
            let envelope = producer
                .seal_registration(&spec, SubscriptionId(i), ClientId(100 + i), rng)
                .unwrap();
            broker.step(i, Input::Subscribe { envelope }).unwrap();
        }
        // Retire a few so removals cross slices too.
        for (t, id) in [3u64, 7, 11].iter().enumerate() {
            let envelope =
                producer.seal_unregistration(SubscriptionId(*id), ClientId(100 + id), rng).unwrap();
            broker.step(20 + t as u64, Input::Unsubscribe { envelope }).unwrap();
        }
        let mut fingerprint = Vec::new();
        for (t, price) in [5.0f64, 30.0, 60.0, 90.0].iter().enumerate() {
            let items = vec![item(&producer, &PublicationSpec::new().attr("price", *price), rng)];
            let outs =
                broker.step(40 + t as u64, Input::Publish { items, trace: TraceId::NONE }).unwrap();
            let mut clients: Vec<ClientId> = deliveries(&outs).iter().map(|d| d.client).collect();
            clients.sort_unstable_by_key(|c| c.0);
            fingerprint.push(clients);
        }
        fingerprint
    }

    #[test]
    fn partitioned_broker_routes_exactly_like_a_single_slice_broker() {
        let mut single = Broker::preshared(0, 77, IndexKind::Poset, false);
        let mut sliced = Broker::preshared(0, 77, IndexKind::Poset, false);
        sliced.set_partition(PartitionConfig::sliced(4));
        assert_eq!(single.slice_count(), 1);
        assert_eq!(sliced.slice_count(), 4);

        // Separate rng streams: ciphertexts differ, routing must not.
        let mut rng_a = CryptoRng::from_seed(77);
        let mut rng_b = CryptoRng::from_seed(77);
        let oracle = routing_fingerprint(&mut single, &mut rng_a);
        let fanned = routing_fingerprint(&mut sliced, &mut rng_b);
        assert_eq!(oracle, fanned, "slice fan-out + merge must be invisible to routing");
        assert_eq!(single.subscriptions(), sliced.subscriptions());
        assert!(!oracle.iter().all(|c| c.is_empty()), "script must actually deliver");
        // The hash spread the nine survivors over more than one slice.
        let occupied = sliced.slice_stats().iter().filter(|s| s.edge_subscriptions > 0).count();
        assert!(occupied > 1, "expected load on several slices, got {occupied}");
    }

    #[test]
    fn partitioned_attested_broker_still_counts_one_crossing_per_batch() {
        let mut rng = CryptoRng::from_seed(34);
        let producer = producer(&mut rng);
        let mut broker = Broker::attested(0, 34, IndexKind::Poset, b"router v1", false).unwrap();
        broker.set_neighbors(&[]);
        broker.set_partition(PartitionConfig::sliced(4));
        broker.provision_preshared(&producer);
        for i in 0..4u64 {
            let envelope = producer
                .seal_registration(
                    &SubscriptionSpec::new().gt("p", 1.0),
                    SubscriptionId(i),
                    ClientId(i),
                    &mut rng,
                )
                .unwrap();
            broker.step(i, Input::Subscribe { envelope }).unwrap();
        }
        broker.reset_counters();
        let items: Vec<PublishItem> = (0..10)
            .map(|i| item(&producer, &PublicationSpec::new().attr("p", 2.0 + i as f64), &mut rng))
            .collect();
        let outs = broker.step(10, Input::Publish { items, trace: TraceId::NONE }).unwrap();
        assert_eq!(deliveries(&outs).len(), 40, "each item reaches all four subscribers");
        assert_eq!(
            broker.stats().ecalls,
            1,
            "fanning a batch across slices must stay one enclave crossing"
        );
    }

    #[test]
    fn legacy_record_restores_into_a_partitioned_broker_and_rebalances() {
        let mut rng = CryptoRng::from_seed(11);
        let producer = producer(&mut rng);

        // A pre-partition (single-slice) broker seals the legacy record
        // layout.
        let mut old = Broker::preshared(0, 11, IndexKind::Poset, false);
        old.provision_preshared(&producer);
        for i in 0..3u64 {
            let envelope = producer
                .seal_registration(
                    &SubscriptionSpec::new().gt("p", i as f64),
                    SubscriptionId(i),
                    ClientId(i),
                    &mut rng,
                )
                .unwrap();
            old.step(i, Input::Subscribe { envelope }).unwrap();
        }
        let legacy = old.sealed_record().expect("record sealed after admissions").to_vec();

        // A partitioned replacement restores it: everything lands in
        // slice 0 (the legacy layout carries no placement).
        let mut broker = Broker::preshared(0, 11, IndexKind::Poset, false);
        broker.set_partition(PartitionConfig::sliced(4));
        broker.provision_preshared(&producer);
        broker.step(10, Input::Crash).unwrap();
        broker.set_sealed_record(legacy);
        broker.step(20, Input::Restart { dead_links: vec![] }).unwrap();
        assert_eq!(broker.lifecycle(), Lifecycle::Serving);
        assert_eq!(broker.subscriptions(), 3);
        assert_eq!(broker.slice_count(), 4);
        let skew = broker.occupancy_skew();
        assert!(skew > 1.5, "legacy restore piles onto slice 0, skew {skew}");

        // The rebalancer spreads the pile below threshold; deliveries
        // stay exactly-once throughout.
        broker.provision_preshared(&producer);
        let report = broker.rebalance_now().unwrap();
        assert!(report.migrated >= 1);
        assert!(report.skew_after <= 1.5, "skew_after {}", report.skew_after);
        assert!(broker.occupancy_skew() <= 1.5);
        assert_eq!(broker.migrations(), report.migrated as u64);
        let publish = |broker: &mut Broker, at: u64, rng: &mut CryptoRng| {
            let items = vec![item(&producer, &PublicationSpec::new().attr("p", 2.5), rng)];
            broker.step(at, Input::Publish { items, trace: TraceId::NONE }).unwrap()
        };
        let outs = publish(&mut broker, 30, &mut rng);
        let mut clients: Vec<u64> = deliveries(&outs).iter().map(|d| d.client.0).collect();
        clients.sort_unstable();
        assert_eq!(clients, vec![0, 1, 2], "every subscriber exactly once after migration");

        // The migrated sharding itself survives the next crash: the
        // versioned record carries per-slice assignments.
        let spread: Vec<usize> =
            broker.slice_stats().iter().map(|s| s.edge_subscriptions).collect();
        broker.step(40, Input::Crash).unwrap();
        broker.step(50, Input::Restart { dead_links: vec![] }).unwrap();
        broker.provision_preshared(&producer);
        let restored: Vec<usize> =
            broker.slice_stats().iter().map(|s| s.edge_subscriptions).collect();
        assert_eq!(spread, restored, "restore must reproduce the sharding exactly");
        let outs = publish(&mut broker, 60, &mut rng);
        assert_eq!(deliveries(&outs).len(), 3);
    }

    #[test]
    fn serving_tick_rebalances_and_coalesces_the_reseals() {
        let mut rng = CryptoRng::from_seed(12);
        let producer = producer(&mut rng);

        // Same legacy-record trick as above to manufacture a skewed
        // partitioned broker deterministically.
        let mut old = Broker::preshared(0, 12, IndexKind::Poset, false);
        old.provision_preshared(&producer);
        for i in 0..6u64 {
            let envelope = producer
                .seal_registration(
                    &SubscriptionSpec::new().gt("p", i as f64),
                    SubscriptionId(i),
                    ClientId(i),
                    &mut rng,
                )
                .unwrap();
            old.step(i, Input::Subscribe { envelope }).unwrap();
        }
        let legacy = old.sealed_record().unwrap().to_vec();

        let mut broker = Broker::preshared(0, 12, IndexKind::Poset, false);
        broker.set_partition(PartitionConfig::sliced(3));
        broker.provision_preshared(&producer);
        broker.step(10, Input::Crash).unwrap();
        broker.set_sealed_record(legacy);
        broker.step(20, Input::Restart { dead_links: vec![] }).unwrap();
        broker.provision_preshared(&producer);
        assert!(broker.occupancy_skew() > 1.5);

        // One serving tick runs the whole rebalancing loop and seals the
        // record once, however many subscriptions it moved.
        let before = broker.stats();
        broker.step(30, Input::Tick).unwrap();
        let after = broker.stats();
        assert!(broker.migrations() >= 2, "skew 3.0 needs multiple migrations");
        assert!(broker.occupancy_skew() <= 1.5);
        assert_eq!(after.seals, before.seals + 1, "the whole pass coalesces into one seal");
        assert_eq!(
            after.seals_saved - before.seals_saved,
            broker.migrations() - 1,
            "every migration after the first rides the same seal"
        );
        // An idle tick at balance is free: no migration, no seal.
        broker.step(31, Input::Tick).unwrap();
        assert_eq!(broker.stats().seals, after.seals);
    }
}
