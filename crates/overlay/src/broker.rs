//! One overlay broker: an enclave-hosted matching core on an untrusted
//! host, joined to its neighbours by attested, sealed links.
//!
//! ## Trust split
//!
//! The in-enclave state is [`BrokerCore`]: the matching engine (holding
//! `SK` and the plaintext compiled subscriptions) plus the per-link
//! covering tables. The untrusted [`Broker`] shell only ever handles
//! ciphertext — registration envelopes, encrypted headers, sealed link
//! frames — and the *routing decisions* the enclave intentionally reveals
//! (which link to forward on, which local client to deliver to), exactly
//! the §3.3 leak the paper accepts for the single-router case.
//!
//! ## Interfaces
//!
//! The engine's index is shared by local subscribers and links: a
//! subscription learnt from neighbour `n` is registered under the
//! synthetic delivery identity [`link_interface`]`(n)` (top bit set), so
//! **one decrypt+match per publication** yields local deliveries *and*
//! the outgoing link set in the same enclave crossing. Per-hop batches go
//! through the gate in [`MAX_DRAIN`]-bounded chunks, mirroring the
//! single-router event loop.

use crate::error::OverlayError;
use crate::forwarding::ForwardingTable;
use scbr::engine::MatchingEngine;
use scbr::ids::{ClientId, KeyEpoch, SubscriptionId};
use scbr::index::IndexKind;
use scbr::protocol::keys::{provision_sk_via_attestation, ProducerCrypto};
use scbr::protocol::messages::{Message, PublishItem};
use scbr::roles::router::MAX_DRAIN;
use scbr::ScbrError;
use scbr_crypto::rng::CryptoRng;
use scbr_net::SecureLink;
use sgx_sim::attest::{AttestationService, VerifierPolicy};
use sgx_sim::enclave::EnclaveBuilder;
use sgx_sim::link::{LinkAccept, LinkFinish, LinkHello, LinkInitiator, LinkKey, LinkResponder};
use sgx_sim::{CacheConfig, CostModel, Enclave, MemorySim, SgxPlatform};
use std::collections::BTreeMap;

/// Top bit of a [`ClientId`] marks a link interface rather than an edge
/// client.
pub const LINK_INTERFACE_BIT: u64 = 1 << 63;

/// The synthetic delivery identity for subscriptions learnt from
/// neighbour `n`.
pub fn link_interface(neighbor: usize) -> ClientId {
    ClientId(LINK_INTERFACE_BIT | neighbor as u64)
}

/// Where a message entered this broker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Origin {
    /// Injected locally (an edge client or producer attached here).
    Local,
    /// Received on the link from this neighbour.
    Link(usize),
}

/// What the enclave decided for one publication.
#[derive(Debug, Clone, Default)]
struct RouteDecision {
    /// Edge clients at this broker to deliver to.
    locals: Vec<ClientId>,
    /// Neighbour links to forward on (ascending, origin excluded).
    links: Vec<usize>,
}

/// Outcome of admitting one subscription envelope.
#[derive(Debug, Clone)]
struct AdmitOutcome {
    id: SubscriptionId,
    forward_to: Vec<usize>,
}

/// One live subscription as the broker's enclave tracks it: where it
/// entered, its compiled (plaintext — never leaves the enclave) form, and
/// the producer-signed envelope that proves it — kept so an uncovering
/// promotion can re-forward the subscription upstream with a unit the
/// next hop authenticates independently.
struct LiveSub {
    origin: Origin,
    compiled: scbr::CompiledSubscription,
    envelope: Vec<u8>,
}

/// What a removal requires on one link: the envelopes of newly uncovered
/// subscriptions to forward first (make-before-break — upstream interest
/// never dips), then the removal itself.
struct LinkRemoval {
    neighbor: usize,
    uncovered: Vec<Vec<u8>>,
}

/// Outcome of processing one unregistration envelope.
struct RemoveOutcome {
    id: SubscriptionId,
    /// False when the id was unknown here (double-unsubscribe): nothing
    /// changed, no traffic due.
    removed: bool,
    /// Links the subscription had actually been forwarded on. Links where
    /// it was pruned are absent — a pruned removal is free.
    links: Vec<LinkRemoval>,
}

/// The enclave-resident routing state.
struct BrokerCore {
    engine: MatchingEngine,
    /// Per neighbour (ascending), the covering table of subscriptions
    /// forwarded on that link.
    upstream: Vec<(usize, ForwardingTable)>,
    /// Every live subscription, keyed by id (the uncovering candidates).
    live: BTreeMap<SubscriptionId, LiveSub>,
    /// Flood mode: forward every subscription on every link (the
    /// equivalence oracle for tests; covering-pruned is the real mode).
    flood: bool,
}

impl BrokerCore {
    /// Registers an envelope and decides which links to propagate it on.
    fn admit(&mut self, envelope: &[u8], origin: Origin) -> Result<AdmitOutcome, ScbrError> {
        let deliver_to = match origin {
            Origin::Local => None,
            Origin::Link(l) => Some(link_interface(l)),
        };
        let (id, compiled) = self.engine.register_envelope_as(envelope, deliver_to)?;
        let flood = self.flood;
        let mut forward_to = Vec::new();
        for (neighbor, table) in &mut self.upstream {
            if origin == Origin::Link(*neighbor) {
                continue; // never forward back where it came from
            }
            if table.contains(id) {
                // Re-registration of an id already forwarded there: the
                // filter may have changed, so replace the row *and*
                // re-forward — the next hop replaces its copy the same
                // way, recursively, and never matches a stale spec. (The
                // coverage check must not run here: the id's own stale
                // row could "cover" its replacement.)
                table.record(id, compiled.clone());
                forward_to.push(*neighbor);
            } else if !flood && table.covered(&compiled) {
                // Flood mode records everything (the table *is* the
                // forwarded set, and the counters stay comparable across
                // modes) — it never consults coverage.
                table.note_pruned();
            } else {
                table.record(id, compiled.clone());
                forward_to.push(*neighbor);
            }
        }
        self.live.insert(id, LiveSub { origin, compiled, envelope: envelope.to_vec() });
        Ok(AdmitOutcome { id, forward_to })
    }

    /// Processes an unregistration envelope: authenticate + remove from
    /// the index, then apply Siena's **uncovering rule** per link — any
    /// still-live subscription the removed one had covered (and therefore
    /// pruned) must now be promoted into the forwarding table and sent
    /// upstream, while links that only ever saw the subscription pruned
    /// stay silent.
    fn remove(&mut self, envelope: &[u8], origin: Origin) -> Result<RemoveOutcome, ScbrError> {
        let (id, _client, existed) = self.engine.unregister_envelope(envelope)?;
        if !existed {
            return Ok(RemoveOutcome { id, removed: false, links: Vec::new() });
        }
        self.live.remove(&id);
        let live = &self.live;
        let mut links = Vec::new();
        for (neighbor, table) in &mut self.upstream {
            if origin == Origin::Link(*neighbor) {
                continue; // the removal came from there; it already knows
            }
            if !table.remove(id) {
                continue; // pruned on this link: upstream never saw it
            }
            // Candidates for promotion: live subscriptions routed toward
            // this link that are not already forwarded there. (In flood
            // mode everything is already in the table, so this is empty
            // and no uncovering ever happens — correct, nothing was ever
            // pruned.)
            let candidates: Vec<(&SubscriptionId, &LiveSub)> = live
                .iter()
                .filter(|(cid, sub)| {
                    sub.origin != Origin::Link(*neighbor) && !table.contains(**cid)
                })
                .collect();
            // Broadest-first, so one promotion can keep narrower
            // candidates pruned (ties broken by id for determinism).
            let coverage: Vec<usize> = candidates
                .iter()
                .map(|(_, a)| {
                    candidates.iter().filter(|(_, b)| a.compiled.covers(&b.compiled)).count()
                })
                .collect();
            let mut order: Vec<usize> = (0..candidates.len()).collect();
            order.sort_by(|&i, &j| {
                coverage[j].cmp(&coverage[i]).then(candidates[i].0 .0.cmp(&candidates[j].0 .0))
            });
            let mut uncovered = Vec::new();
            for &i in &order {
                let (cid, sub) = candidates[i];
                if table.covered(&sub.compiled) {
                    continue; // still covered by the remaining interest
                }
                table.record_uncovered(*cid, sub.compiled.clone());
                uncovered.push(sub.envelope.clone());
            }
            links.push(LinkRemoval { neighbor: *neighbor, uncovered });
        }
        Ok(RemoveOutcome { id, removed: true, links })
    }

    /// Decrypts and matches a chunk of headers, splitting each match set
    /// into local deliveries and outgoing links.
    fn route(&self, headers: &[&[u8]], origin: Origin) -> Vec<Result<RouteDecision, ScbrError>> {
        headers
            .iter()
            .map(|ct| {
                let matched = self.engine.match_encrypted(ct)?;
                let mut decision = RouteDecision::default();
                for client in matched {
                    if client.0 & LINK_INTERFACE_BIT == 0 {
                        decision.locals.push(client);
                    } else {
                        let neighbor = (client.0 & !LINK_INTERFACE_BIT) as usize;
                        if origin != Origin::Link(neighbor) {
                            decision.links.push(neighbor);
                        }
                    }
                }
                Ok(decision)
            })
            .collect()
    }
}

/// One sealed frame to hand to a neighbour.
#[derive(Debug, Clone)]
pub struct LinkFrame {
    /// Destination router.
    pub to: usize,
    /// Source router (the receiver selects its inbound channel by this).
    pub from: usize,
    /// The sealed wire bytes.
    pub bytes: Vec<u8>,
}

/// A publication delivered to an edge client of this broker.
#[derive(Debug, Clone)]
pub struct LocalDelivery {
    /// The delivering broker.
    pub router: usize,
    /// The edge client.
    pub client: ClientId,
    /// The delivered item (payload still encrypted under the group key).
    pub item: PublishItem,
}

/// The two halves of one established link at one endpoint.
enum LinkChannel {
    /// Sealed under an attested link key.
    Sealed { outbound: SecureLink, inbound: SecureLink },
    /// Pre-shared-trust mode: frames pass in the clear.
    Plain,
}

/// Per-broker counters (cumulative unless reset).
#[derive(Debug, Clone, Copy)]
pub struct BrokerStats {
    /// The broker's router id.
    pub router: usize,
    /// Live subscriptions in the index (local + link interfaces).
    pub subscriptions: usize,
    /// Enclave crossings since the last reset.
    pub ecalls: u64,
    /// OCALL round-trips since the last reset.
    pub ocalls: u64,
    /// Virtual nanoseconds elapsed since the last reset.
    pub elapsed_ns: f64,
    /// Live forwarding-table rows, summed over links (equals
    /// `forwarded_total − removed`).
    pub forwarded: u64,
    /// Subscriptions covering-pruned, summed over links (cumulative).
    pub pruned: u64,
    /// Subscriptions ever forwarded upstream, summed over links
    /// (cumulative; includes uncovering promotions).
    pub forwarded_total: u64,
    /// Forwarding-table rows removed again, summed over links
    /// (cumulative).
    pub removed: u64,
    /// Uncovering promotions (previously-pruned subscriptions forwarded
    /// after a removal exposed them), summed over links (cumulative).
    pub uncovered: u64,
}

/// One overlay broker (untrusted shell + enclave-resident core).
pub struct Broker {
    id: usize,
    platform: Option<SgxPlatform>,
    enclave: Option<Enclave>,
    core: BrokerCore,
    links: BTreeMap<usize, LinkChannel>,
    rng: CryptoRng,
}

impl std::fmt::Debug for Broker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Broker")
            .field("id", &self.id)
            .field("attested", &self.enclave.is_some())
            .field("links", &self.links.len())
            .field("subscriptions", &self.core.engine.index().len())
            .finish()
    }
}

impl Broker {
    /// Launches an attested broker: own platform (its own machine), the
    /// routing enclave measured from `code`, index in enclave memory.
    ///
    /// # Errors
    ///
    /// Propagates enclave-launch failures.
    pub fn attested(
        id: usize,
        seed: u64,
        kind: IndexKind,
        code: &[u8],
        flood: bool,
    ) -> Result<Self, OverlayError> {
        let platform = SgxPlatform::for_testing(seed);
        let enclave = platform.launch(router_builder(code))?;
        let engine = MatchingEngine::new(enclave.memory(), kind);
        Ok(Broker {
            id,
            platform: Some(platform),
            enclave: Some(enclave),
            core: BrokerCore { engine, upstream: Vec::new(), live: BTreeMap::new(), flood },
            links: BTreeMap::new(),
            rng: CryptoRng::from_seed(seed ^ 0x6c69_6e6b),
        })
    }

    /// Builds a plain broker for pre-shared-trust deployments and tests:
    /// no enclave, free-cost native memory, unsealed links.
    pub fn preshared(id: usize, seed: u64, kind: IndexKind, flood: bool) -> Self {
        let mem = MemorySim::native(CacheConfig::default(), CostModel::free());
        Broker {
            id,
            platform: None,
            enclave: None,
            core: BrokerCore {
                engine: MatchingEngine::new(&mem, kind),
                upstream: Vec::new(),
                live: BTreeMap::new(),
                flood,
            },
            links: BTreeMap::new(),
            rng: CryptoRng::from_seed(seed ^ 0x6c69_6e6b),
        }
    }

    /// The broker's router id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The broker's platform (attested brokers only).
    pub fn platform(&self) -> Option<&SgxPlatform> {
        self.platform.as_ref()
    }

    /// The broker's enclave (attested brokers only).
    pub fn enclave(&self) -> Option<&Enclave> {
        self.enclave.as_ref()
    }

    /// Runs `f` on the enclave-resident core, crossing the call gate when
    /// attested.
    fn call<R>(&mut self, f: impl FnOnce(&mut BrokerCore) -> R) -> R {
        let core = &mut self.core;
        match &self.enclave {
            Some(enclave) => enclave.ecall(|_ctx| f(core)),
            None => f(core),
        }
    }

    /// Declares the broker's neighbour set, creating one (empty) covering
    /// table per link. Call once, before any traffic.
    pub fn set_neighbors(&mut self, neighbors: &[usize]) {
        self.core.upstream = neighbors.iter().map(|&n| (n, ForwardingTable::new())).collect();
    }

    /// Installs `SK` and the producer key directly (pre-shared trust).
    pub fn provision_preshared(&mut self, producer: &ProducerCrypto) {
        let sk = producer.sk().clone();
        let pk = producer.public_key().clone();
        self.call(|c| c.engine.provision_keys(sk, pk));
    }

    /// Provisions `SK` into the broker's enclave via remote attestation
    /// (the producer releases the key only to the expected measurement).
    ///
    /// # Errors
    ///
    /// Any attestation, policy or crypto failure; also fails on a
    /// pre-shared broker (nothing to attest).
    pub fn provision_attested(
        &mut self,
        service: &AttestationService,
        policy: &VerifierPolicy,
        producer: &ProducerCrypto,
        producer_rng: &mut CryptoRng,
    ) -> Result<(), OverlayError> {
        let platform = self
            .platform
            .as_ref()
            .ok_or(OverlayError::Link { reason: "broker has no platform" })?;
        let enclave =
            self.enclave.as_ref().ok_or(OverlayError::Link { reason: "broker has no enclave" })?;
        let (sk, pk) = provision_sk_via_attestation(
            platform,
            enclave,
            service,
            policy,
            producer,
            &mut self.rng,
            producer_rng,
        )?;
        self.call(|c| c.engine.provision_keys(sk, pk));
        Ok(())
    }

    // ---- link handshake (attested mode) --------------------------------

    fn attested_parts(&mut self) -> Result<(&SgxPlatform, &Enclave, &mut CryptoRng), OverlayError> {
        match (&self.platform, &self.enclave) {
            (Some(p), Some(e)) => Ok((p, e, &mut self.rng)),
            _ => Err(OverlayError::Link { reason: "link handshake requires an attested broker" }),
        }
    }

    /// Starts a handshake towards a neighbour; returns the wire frame to
    /// send and the state to keep for [`Broker::link_finish`].
    ///
    /// # Errors
    ///
    /// Propagates handshake failures; fails on pre-shared brokers.
    pub fn link_hello(&mut self) -> Result<(Vec<u8>, LinkInitiator), OverlayError> {
        let (platform, enclave, rng) = self.attested_parts()?;
        let (hello, state) = sgx_sim::link::initiate(platform, enclave, rng)?;
        Ok((Message::LinkHello { payload: hello.to_bytes() }.to_wire(), state))
    }

    /// Responds to a neighbour's hello after verifying its quote against
    /// `service` and `policy`.
    ///
    /// # Errors
    ///
    /// Attestation or policy failures refuse the link.
    pub fn link_accept(
        &mut self,
        hello_wire: &[u8],
        service: &AttestationService,
        policy: &VerifierPolicy,
    ) -> Result<(Vec<u8>, LinkResponder), OverlayError> {
        let Message::LinkHello { payload } = Message::from_wire(hello_wire)? else {
            return Err(OverlayError::Link { reason: "expected link-hello" });
        };
        let hello = LinkHello::from_bytes(&payload)?;
        let (platform, enclave, rng) = self.attested_parts()?;
        let (accept, state) =
            sgx_sim::link::accept(platform, enclave, service, policy, &hello, rng)?;
        Ok((Message::LinkAccept { payload: accept.to_bytes() }.to_wire(), state))
    }

    /// Completes the initiator side, verifying the responder's quote and
    /// deriving the link key.
    ///
    /// # Errors
    ///
    /// Attestation or policy failures refuse the link.
    pub fn link_finish(
        &mut self,
        state: LinkInitiator,
        accept_wire: &[u8],
        service: &AttestationService,
        policy: &VerifierPolicy,
    ) -> Result<(Vec<u8>, LinkKey), OverlayError> {
        let Message::LinkAccept { payload } = Message::from_wire(accept_wire)? else {
            return Err(OverlayError::Link { reason: "expected link-accept" });
        };
        let accept = LinkAccept::from_bytes(&payload)?;
        let (_platform, enclave, rng) = self.attested_parts()?;
        let (finish, key) = sgx_sim::link::finish(state, &accept, service, policy, enclave, rng)?;
        Ok((Message::LinkFinish { payload: finish.to_bytes() }.to_wire(), key))
    }

    /// Completes the responder side, deriving the same link key.
    ///
    /// # Errors
    ///
    /// Fails when the wrapped secret does not unwrap.
    pub fn link_complete(
        &mut self,
        state: LinkResponder,
        finish_wire: &[u8],
    ) -> Result<LinkKey, OverlayError> {
        let Message::LinkFinish { payload } = Message::from_wire(finish_wire)? else {
            return Err(OverlayError::Link { reason: "expected link-finish" });
        };
        let finish = LinkFinish::from_bytes(&payload)?;
        let (_platform, enclave, _rng) = self.attested_parts()?;
        Ok(sgx_sim::link::complete(state, &finish, enclave)?)
    }

    /// Installs the sealed channels for the link to `neighbor` (both
    /// directions derive from the handshake key).
    pub fn install_sealed_link(&mut self, neighbor: usize, key: &LinkKey) {
        let local = self.id as u64;
        self.links.insert(
            neighbor,
            LinkChannel::Sealed {
                outbound: SecureLink::outbound(key.as_bytes(), local, neighbor as u64),
                inbound: SecureLink::inbound(key.as_bytes(), local, neighbor as u64),
            },
        );
    }

    /// Installs an unsealed link to `neighbor` (pre-shared trust).
    pub fn install_plain_link(&mut self, neighbor: usize) {
        self.links.insert(neighbor, LinkChannel::Plain);
    }

    fn seal_to(&mut self, neighbor: usize, wire: &[u8]) -> Result<Vec<u8>, OverlayError> {
        let rng = &mut self.rng;
        match self.links.get_mut(&neighbor) {
            Some(LinkChannel::Sealed { outbound, .. }) => Ok(outbound.seal(wire, rng)),
            Some(LinkChannel::Plain) => Ok(wire.to_vec()),
            None => Err(OverlayError::Link { reason: "no link to neighbour" }),
        }
    }

    fn open_from(&mut self, neighbor: usize, frame: &[u8]) -> Result<Vec<u8>, OverlayError> {
        match self.links.get_mut(&neighbor) {
            Some(LinkChannel::Sealed { inbound, .. }) => Ok(inbound.open(frame)?),
            Some(LinkChannel::Plain) => Ok(frame.to_vec()),
            None => Err(OverlayError::Link { reason: "no link to neighbour" }),
        }
    }

    // ---- traffic -------------------------------------------------------

    /// Admits a registration envelope and returns the sealed `SubForward`
    /// frames for the links it propagates on (covering-pruned unless in
    /// flood mode).
    ///
    /// # Errors
    ///
    /// Registration failures (bad signature, undecryptable body, missing
    /// keys) and sealing failures.
    pub fn handle_subscription(
        &mut self,
        envelope: &[u8],
        origin: Origin,
    ) -> Result<(SubscriptionId, Vec<LinkFrame>), OverlayError> {
        let outcome = self.call(|c| c.admit(envelope, origin))?;
        let wire = Message::SubForward { envelope: envelope.to_vec() }.to_wire();
        let mut frames = Vec::with_capacity(outcome.forward_to.len());
        for neighbor in outcome.forward_to {
            let bytes = self.seal_to(neighbor, &wire)?;
            frames.push(LinkFrame { to: neighbor, from: self.id, bytes });
        }
        Ok((outcome.id, frames))
    }

    /// Processes an unregistration envelope and returns whether the
    /// subscription existed here, plus the sealed frames its removal
    /// requires: on every link the subscription had been **forwarded** on,
    /// first the `SubForward`s of any newly *uncovered* subscriptions
    /// (make-before-break — the upstream covering set never dips below the
    /// live interest), then the `SubRemove` itself, which recurses at the
    /// next hop. A removal that was covering-pruned on a link sends
    /// nothing there, and a double-unsubscribe sends nothing anywhere.
    ///
    /// # Errors
    ///
    /// Authentication/decryption failures of the envelope, and sealing
    /// failures.
    pub fn handle_unsubscribe(
        &mut self,
        envelope: &[u8],
        origin: Origin,
    ) -> Result<(SubscriptionId, bool, Vec<LinkFrame>), OverlayError> {
        let outcome = self.call(|c| c.remove(envelope, origin))?;
        let mut frames = Vec::new();
        if outcome.removed {
            let remove_wire = Message::SubRemove { envelope: envelope.to_vec() }.to_wire();
            for link in outcome.links {
                for env in &link.uncovered {
                    let wire = Message::SubForward { envelope: env.clone() }.to_wire();
                    let bytes = self.seal_to(link.neighbor, &wire)?;
                    frames.push(LinkFrame { to: link.neighbor, from: self.id, bytes });
                }
                let bytes = self.seal_to(link.neighbor, &remove_wire)?;
                frames.push(LinkFrame { to: link.neighbor, from: self.id, bytes });
            }
        }
        Ok((outcome.id, outcome.removed, frames))
    }

    /// Routes a batch of publications: decrypt+match the whole batch in
    /// [`MAX_DRAIN`]-bounded single enclave crossings, deliver locally,
    /// and forward each item on every matching link (origin excluded).
    ///
    /// # Errors
    ///
    /// Fails on the first undecryptable header or sealing failure.
    pub fn handle_publish(
        &mut self,
        items: &[PublishItem],
        origin: Origin,
    ) -> Result<(Vec<LocalDelivery>, Vec<LinkFrame>), OverlayError> {
        let mut deliveries = Vec::new();
        // Per-link outgoing batches, in ascending neighbour order.
        let mut outgoing: BTreeMap<usize, Vec<PublishItem>> = BTreeMap::new();
        for chunk in items.chunks(MAX_DRAIN) {
            let headers: Vec<&[u8]> = chunk.iter().map(|i| i.header_ct.as_slice()).collect();
            let decisions = self
                .call(|c| c.route(&headers, origin).into_iter().collect::<Result<Vec<_>, _>>())?;
            for (item, decision) in chunk.iter().zip(decisions) {
                for client in decision.locals {
                    deliveries.push(LocalDelivery { router: self.id, client, item: item.clone() });
                }
                for neighbor in decision.links {
                    outgoing.entry(neighbor).or_default().push(item.clone());
                }
            }
        }
        let mut frames = Vec::with_capacity(outgoing.len());
        for (neighbor, items) in outgoing {
            let wire = Message::PublishBatch { items }.to_wire();
            let bytes = self.seal_to(neighbor, &wire)?;
            frames.push(LinkFrame { to: neighbor, from: self.id, bytes });
        }
        Ok((deliveries, frames))
    }

    /// Handles one sealed frame from a neighbour: open, parse, dispatch.
    ///
    /// # Errors
    ///
    /// Authentication failures (tampered/replayed frames), unknown links,
    /// unexpected message kinds, and the underlying handler errors.
    pub fn receive(
        &mut self,
        from: usize,
        frame: &[u8],
    ) -> Result<(Vec<LocalDelivery>, Vec<LinkFrame>), OverlayError> {
        let wire = self.open_from(from, frame)?;
        match Message::from_wire(&wire)? {
            Message::SubForward { envelope } => self
                .handle_subscription(&envelope, Origin::Link(from))
                .map(|(_, frames)| (Vec::new(), frames)),
            Message::SubRemove { envelope } => self
                .handle_unsubscribe(&envelope, Origin::Link(from))
                .map(|(_, _, frames)| (Vec::new(), frames)),
            Message::PublishBatch { items } => self.handle_publish(&items, Origin::Link(from)),
            Message::Publish { header_ct, epoch, payload_ct } => {
                let item = PublishItem { header_ct, epoch, payload_ct };
                self.handle_publish(std::slice::from_ref(&item), Origin::Link(from))
            }
            _ => Err(OverlayError::Link { reason: "unexpected message kind on link" }),
        }
    }

    // ---- inspection ----------------------------------------------------

    /// Live subscriptions in the index (edge clients + link interfaces).
    pub fn subscriptions(&self) -> usize {
        self.core.engine.index().len()
    }

    /// Counters for this broker.
    pub fn stats(&self) -> BrokerStats {
        let mem = self.core.engine.memory().stats();
        let (mut forwarded, mut pruned) = (0u64, 0u64);
        let (mut forwarded_total, mut removed, mut uncovered) = (0u64, 0u64, 0u64);
        for (_, table) in &self.core.upstream {
            forwarded += table.forwarded() as u64;
            pruned += table.pruned();
            forwarded_total += table.forwarded_total();
            removed += table.removed();
            uncovered += table.uncovered();
        }
        BrokerStats {
            router: self.id,
            subscriptions: self.core.engine.index().len(),
            ecalls: mem.ecalls,
            ocalls: mem.ocalls,
            elapsed_ns: mem.elapsed_ns,
            forwarded,
            pruned,
            forwarded_total,
            removed,
            uncovered,
        }
    }

    /// Resets the broker's memory counters (between measurement phases).
    pub fn reset_counters(&self) {
        self.core.engine.memory().reset_counters();
    }
}

/// The canonical routing-enclave builder: all genuine overlay routers
/// share this measurement (`code` is the measured routing binary).
pub fn router_builder(code: &[u8]) -> EnclaveBuilder {
    EnclaveBuilder::new("scbr-overlay-router").add_page(code).isv_prod_id(2)
}

/// A [`KeyEpoch`] for overlay demo payloads (group-key rotation is
/// orthogonal to the overlay and handled by the producer role).
pub const DEMO_EPOCH: KeyEpoch = KeyEpoch(0);

#[cfg(test)]
mod tests {
    use super::*;
    use scbr::{PublicationSpec, SubscriptionSpec};

    fn producer(rng: &mut CryptoRng) -> ProducerCrypto {
        ProducerCrypto::generate(512, rng).unwrap()
    }

    #[test]
    fn link_interface_encoding() {
        let iface = link_interface(5);
        assert_eq!(iface.0 & LINK_INTERFACE_BIT, LINK_INTERFACE_BIT);
        assert_eq!(iface.0 & !LINK_INTERFACE_BIT, 5);
    }

    #[test]
    fn preshared_broker_admits_and_routes() {
        let mut rng = CryptoRng::from_seed(1);
        let producer = producer(&mut rng);
        let mut broker = Broker::preshared(0, 1, IndexKind::Poset, false);
        broker.set_neighbors(&[1, 2]);
        broker.install_plain_link(1);
        broker.install_plain_link(2);
        broker.provision_preshared(&producer);

        // A local subscription propagates to both neighbours.
        let spec = SubscriptionSpec::new().gt("price", 10.0);
        let envelope =
            producer.seal_registration(&spec, SubscriptionId(1), ClientId(7), &mut rng).unwrap();
        let (id, frames) = broker.handle_subscription(&envelope, Origin::Local).unwrap();
        assert_eq!(id, SubscriptionId(1));
        assert_eq!(frames.iter().map(|f| f.to).collect::<Vec<_>>(), vec![1, 2]);

        // A covered subscription from link 1 is pruned towards 2 but the
        // index still records it (for reverse-path delivery).
        let narrow = SubscriptionSpec::new().gt("price", 50.0);
        let envelope2 =
            producer.seal_registration(&narrow, SubscriptionId(2), ClientId(8), &mut rng).unwrap();
        let (_, frames2) = broker.handle_subscription(&envelope2, Origin::Link(1)).unwrap();
        assert!(frames2.is_empty(), "covered subscription is pruned");
        assert_eq!(broker.subscriptions(), 2);
        assert_eq!(broker.stats().pruned, 1);

        // Publications split into local delivery + link forwarding; the
        // origin link is excluded.
        let publication = PublicationSpec::new().attr("price", 60.0);
        let item = PublishItem {
            header_ct: producer.encrypt_header(&publication, &mut rng),
            epoch: DEMO_EPOCH,
            payload_ct: vec![0xaa],
        };
        let (deliveries, frames) =
            broker.handle_publish(std::slice::from_ref(&item), Origin::Link(2)).unwrap();
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].client, ClientId(7));
        // price>10 came locally; price>50 came from link 1 → forward to 1.
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].to, 1);
    }

    #[test]
    fn flood_mode_skips_pruning() {
        let mut rng = CryptoRng::from_seed(2);
        let producer = producer(&mut rng);
        let mut broker = Broker::preshared(0, 2, IndexKind::Poset, true);
        broker.set_neighbors(&[1]);
        broker.install_plain_link(1);
        broker.provision_preshared(&producer);
        for (i, spec) in
            [SubscriptionSpec::new().gt("price", 0.0), SubscriptionSpec::new().gt("price", 10.0)]
                .iter()
                .enumerate()
        {
            let envelope = producer
                .seal_registration(spec, SubscriptionId(i as u64), ClientId(i as u64), &mut rng)
                .unwrap();
            let (_, frames) = broker.handle_subscription(&envelope, Origin::Local).unwrap();
            assert_eq!(frames.len(), 1, "flood forwards everything");
        }
    }

    #[test]
    fn removing_a_covering_sub_uncovers_and_reforwards() {
        let mut rng = CryptoRng::from_seed(5);
        let producer = producer(&mut rng);
        let mut broker = Broker::preshared(0, 5, IndexKind::Poset, false);
        broker.set_neighbors(&[1]);
        broker.install_plain_link(1);
        broker.provision_preshared(&producer);

        let broad = producer
            .seal_registration(
                &SubscriptionSpec::new().gt("price", 0.0),
                SubscriptionId(1),
                ClientId(1),
                &mut rng,
            )
            .unwrap();
        let narrow = producer
            .seal_registration(
                &SubscriptionSpec::new().gt("price", 10.0),
                SubscriptionId(2),
                ClientId(2),
                &mut rng,
            )
            .unwrap();
        let (_, f1) = broker.handle_subscription(&broad, Origin::Local).unwrap();
        assert_eq!(f1.len(), 1, "broad forwards");
        let (_, f2) = broker.handle_subscription(&narrow, Origin::Local).unwrap();
        assert!(f2.is_empty(), "narrow is pruned under broad");

        // Removing the broad one uncovers the narrow one: the link sees a
        // SubForward (narrow) *then* a SubRemove (broad).
        let unreg = producer.seal_unregistration(SubscriptionId(1), ClientId(1), &mut rng).unwrap();
        let (id, removed, frames) = broker.handle_unsubscribe(&unreg, Origin::Local).unwrap();
        assert_eq!(id, SubscriptionId(1));
        assert!(removed);
        let kinds: Vec<String> = frames
            .iter()
            .map(|f| Message::from_wire(&f.bytes).unwrap().kind().to_owned())
            .collect();
        assert_eq!(kinds, vec!["sub-forward", "sub-remove"], "make-before-break ordering");
        let stats = broker.stats();
        assert_eq!(stats.uncovered, 1);
        assert_eq!(stats.removed, 1);
        assert_eq!(stats.forwarded, stats.forwarded_total - stats.removed);
        assert_eq!(broker.subscriptions(), 1, "only the narrow subscription remains");
    }

    #[test]
    fn re_registration_with_changed_filter_reforwards_upstream() {
        // Two linked brokers: a (edge) — b. A re-registered id with a
        // *broader* filter must replace the upstream copy, or b keeps
        // matching the stale narrow spec and drops deliveries.
        let mut rng = CryptoRng::from_seed(7);
        let producer = producer(&mut rng);
        let mut a = Broker::preshared(0, 7, IndexKind::Poset, false);
        let mut b = Broker::preshared(1, 8, IndexKind::Poset, false);
        a.set_neighbors(&[1]);
        b.set_neighbors(&[0]);
        a.install_plain_link(1);
        b.install_plain_link(0);
        a.provision_preshared(&producer);
        b.provision_preshared(&producer);

        let narrow = producer
            .seal_registration(
                &SubscriptionSpec::new().gt("price", 10.0),
                SubscriptionId(1),
                ClientId(1),
                &mut rng,
            )
            .unwrap();
        let (_, frames) = a.handle_subscription(&narrow, Origin::Local).unwrap();
        for f in &frames {
            b.receive(f.from, &f.bytes).unwrap();
        }

        // Same id, broader filter: must travel again and replace b's copy.
        let broad = producer
            .seal_registration(
                &SubscriptionSpec::new().gt("price", 0.0),
                SubscriptionId(1),
                ClientId(1),
                &mut rng,
            )
            .unwrap();
        let (_, frames) = a.handle_subscription(&broad, Origin::Local).unwrap();
        assert_eq!(frames.len(), 1, "the replacement is re-forwarded");
        for f in &frames {
            b.receive(f.from, &f.bytes).unwrap();
        }
        assert_eq!(a.subscriptions(), 1, "replaced, not duplicated");
        assert_eq!(b.subscriptions(), 1, "replaced, not duplicated");

        // A publication matching only the broad spec, entering at b, must
        // now cross the link and deliver at a.
        let item = PublishItem {
            header_ct: producer
                .encrypt_header(&PublicationSpec::new().attr("price", 5.0), &mut rng),
            epoch: DEMO_EPOCH,
            payload_ct: vec![0xbb],
        };
        let (_, frames) = b.handle_publish(std::slice::from_ref(&item), Origin::Local).unwrap();
        assert_eq!(frames.len(), 1, "b forwards under the replaced (broad) spec");
        let (deliveries, _) = a.receive(1, &frames[0].bytes).unwrap();
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].client, ClientId(1));
    }

    #[test]
    fn pruned_removal_is_silent_and_double_remove_is_idempotent() {
        let mut rng = CryptoRng::from_seed(6);
        let producer = producer(&mut rng);
        let mut broker = Broker::preshared(0, 6, IndexKind::Poset, false);
        broker.set_neighbors(&[1]);
        broker.install_plain_link(1);
        broker.provision_preshared(&producer);
        let broad = producer
            .seal_registration(
                &SubscriptionSpec::new().gt("price", 0.0),
                SubscriptionId(1),
                ClientId(1),
                &mut rng,
            )
            .unwrap();
        let narrow = producer
            .seal_registration(
                &SubscriptionSpec::new().gt("price", 10.0),
                SubscriptionId(2),
                ClientId(2),
                &mut rng,
            )
            .unwrap();
        broker.handle_subscription(&broad, Origin::Local).unwrap();
        broker.handle_subscription(&narrow, Origin::Local).unwrap();

        // The narrow sub was pruned: its removal must not touch the link.
        let unreg = producer.seal_unregistration(SubscriptionId(2), ClientId(2), &mut rng).unwrap();
        let (_, removed, frames) = broker.handle_unsubscribe(&unreg, Origin::Local).unwrap();
        assert!(removed);
        assert!(frames.is_empty(), "a pruned removal generates no network traffic");
        assert_eq!(broker.subscriptions(), 1);

        // Removing it again: idempotent, no error, still silent.
        let unreg2 =
            producer.seal_unregistration(SubscriptionId(2), ClientId(2), &mut rng).unwrap();
        let (_, removed2, frames2) = broker.handle_unsubscribe(&unreg2, Origin::Local).unwrap();
        assert!(!removed2);
        assert!(frames2.is_empty());

        // A forged unregistration is refused outright.
        let rogue = ProducerCrypto::generate(512, &mut rng).unwrap();
        let forged = rogue.seal_unregistration(SubscriptionId(1), ClientId(1), &mut rng).unwrap();
        assert!(broker.handle_unsubscribe(&forged, Origin::Local).is_err());
        assert_eq!(broker.subscriptions(), 1, "forgery removed nothing");
    }

    #[test]
    fn attested_broker_counts_one_crossing_per_batch() {
        let mut rng = CryptoRng::from_seed(3);
        let producer = producer(&mut rng);
        let mut broker = Broker::attested(0, 33, IndexKind::Poset, b"router v1", false).unwrap();
        broker.set_neighbors(&[]);
        // Install keys directly (attestation is exercised in the fabric
        // tests; this test is about crossing accounting).
        broker.provision_preshared(&producer);
        let envelope = producer
            .seal_registration(
                &SubscriptionSpec::new().gt("p", 1.0),
                SubscriptionId(1),
                ClientId(1),
                &mut rng,
            )
            .unwrap();
        broker.handle_subscription(&envelope, Origin::Local).unwrap();
        broker.reset_counters();
        let items: Vec<PublishItem> = (0..10)
            .map(|i| PublishItem {
                header_ct: producer
                    .encrypt_header(&PublicationSpec::new().attr("p", 2.0 + i as f64), &mut rng),
                epoch: DEMO_EPOCH,
                payload_ct: vec![i as u8],
            })
            .collect();
        let (deliveries, frames) = broker.handle_publish(&items, Origin::Local).unwrap();
        assert_eq!(deliveries.len(), 10);
        assert!(frames.is_empty());
        assert_eq!(broker.stats().ecalls, 1, "whole batch in one crossing");
    }

    #[test]
    fn frames_on_unknown_links_are_refused() {
        let mut broker = Broker::preshared(0, 4, IndexKind::Poset, false);
        assert!(matches!(
            broker.receive(9, b"junk"),
            Err(OverlayError::Link { reason: "no link to neighbour" })
        ));
    }
}
