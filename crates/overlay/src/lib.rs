//! # scbr-overlay — a multi-hop network of attested SCBR routers
//!
//! The paper evaluates one SGX-hosted router; its §3.4 and conclusion
//! point at the real deployment shape: a *network* of routing enclaves
//! spread across untrusted hosts. This crate builds that overlay on top of
//! the single-router engine:
//!
//! * [`topology`] — the broker graph: a validated spanning tree, so
//!   reverse-path forwarding is loop-free by construction.
//! * [`sgx_sim::link`] + [`scbr_net::SecureLink`] — every tree edge is
//!   bootstrapped by a mutual-quote attestation handshake (both routers
//!   prove measurement and platform before contributing key material) and
//!   then sealed with the derived link key.
//! * [`forwarding`] — covering-pruned subscription propagation: a router
//!   forwards a subscription up a link only if nothing already forwarded
//!   there covers it, reusing the containment relation the poset index is
//!   built on. Removal is symmetric (Siena's *uncovering* rule): an
//!   unregistration travels only on links the subscription was actually
//!   forwarded on, and any still-live subscriptions it had covered are
//!   re-forwarded ahead of it, so upstream interest never dips below the
//!   live set.
//! * [`broker`] — one overlay node as a **sans-IO lifecycle state
//!   machine** (`Cold → Attesting → Linking → Serving → Crashed →
//!   Rejoining`): its whole surface is [`broker::Broker::step`]`(now,
//!   Input) -> Vec<Output>`. The matching engine (inside the enclave)
//!   indexes link interfaces alongside edge clients, so each hop
//!   decrypts and matches a whole publication batch in **one enclave
//!   crossing** and learns local deliveries and outgoing links together.
//!   At the end of any `step` that mutated subscriptions the enclave
//!   re-seals a rollback-protected recovery record (one seal per step,
//!   however many mutations the step carried); a crashed broker
//!   restarts from it and asks its neighbours to replay their live
//!   forwarded sets.
//! * [`partition`] — the matcher inside each broker can be sharded into
//!   N [`partition::PartitionedMatcher`] slices behind the same
//!   admit/remove/route surface: subscriptions hash-placed per slice,
//!   each publication fanned across all slices inside the same single
//!   enclave crossing and merged, and a serving-tick rebalancer that
//!   watches `occupancy_skew` and migrates subscriptions fullest →
//!   emptiest make-before-break
//!   ([`partition::PartitionConfig::skew_threshold`]).
//! * [`fabric`] — a thin deterministic scheduler: build, attest, link,
//!   then [`fabric::OverlayFabric::subscribe`],
//!   [`fabric::OverlayFabric::publish`],
//!   [`fabric::OverlayFabric::unsubscribe`] — and the failure path,
//!   [`fabric::OverlayFabric::crash`] /
//!   [`fabric::OverlayFabric::restart`]. With heartbeats enabled
//!   ([`broker::HeartbeatConfig`]), the fabric is also the liveness
//!   oracle: [`fabric::OverlayFabric::run_detection`] aggregates
//!   per-link silence suspicion into quorum and fences + restarts
//!   crashed brokers automatically — adjacent concurrent crashes
//!   included — with no operator call.
//!
//! ## Example
//!
//! ```
//! use scbr::ids::ClientId;
//! use scbr::{PublicationSpec, SubscriptionSpec};
//! use scbr_overlay::fabric::{FabricConfig, OverlayFabric};
//! use scbr_overlay::topology::Topology;
//!
//! // A 3-broker chain with pre-shared trust (fast; see
//! // `FabricConfig::attested` for the fully attested mode).
//! let mut fabric = OverlayFabric::build(Topology::line(3), FabricConfig::preshared(1))?;
//! fabric.subscribe(0, ClientId(7), &SubscriptionSpec::new().eq("symbol", "HAL"))?;
//! let deliveries = fabric.publish(2, &[PublicationSpec::new().attr("symbol", "HAL")])?;
//! assert_eq!(deliveries.len(), 1);
//! assert_eq!(deliveries[0].client, ClientId(7));
//! # Ok::<(), scbr_overlay::OverlayError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod broker;
pub mod error;
pub mod fabric;
pub mod forwarding;
pub mod partition;
pub mod topology;

pub use broker::{
    Broker, BrokerStats, HeartbeatConfig, Input, Lifecycle, LinkEvent, Origin, Output,
    SuspectReason,
};
pub use error::OverlayError;
pub use fabric::{
    AutoRejoin, Delivery, FabricConfig, OverlayFabric, Propagation, RejoinReport, Trust,
};
pub use forwarding::ForwardingTable;
pub use partition::{PartitionConfig, PartitionedMatcher, RebalanceReport};
pub use scbr_telemetry::{BrokerTelemetry, HopRecord, StageSummary, TelemetrySnapshot, TraceId};
pub use topology::Topology;
