//! # scbr-overlay — a multi-hop network of attested SCBR routers
//!
//! The paper evaluates one SGX-hosted router; its §3.4 and conclusion
//! point at the real deployment shape: a *network* of routing enclaves
//! spread across untrusted hosts. This crate builds that overlay on top of
//! the single-router engine:
//!
//! * [`topology`] — the broker graph: a validated spanning tree, so
//!   reverse-path forwarding is loop-free by construction.
//! * [`sgx_sim::link`] + [`scbr_net::SecureLink`] — every tree edge is
//!   bootstrapped by a mutual-quote attestation handshake (both routers
//!   prove measurement and platform before contributing key material) and
//!   then sealed with the derived link key.
//! * [`forwarding`] — covering-pruned subscription propagation: a router
//!   forwards a subscription up a link only if nothing already forwarded
//!   there covers it, reusing the containment relation the poset index is
//!   built on. Removal is symmetric (Siena's *uncovering* rule): an
//!   unregistration travels only on links the subscription was actually
//!   forwarded on, and any still-live subscriptions it had covered are
//!   re-forwarded ahead of it, so upstream interest never dips below the
//!   live set.
//! * [`broker`] — one overlay node: the matching engine (inside the
//!   enclave) indexes link interfaces alongside edge clients, so each hop
//!   decrypts and matches a whole publication batch in **one enclave
//!   crossing** and learns local deliveries and outgoing links together.
//! * [`fabric`] — deployment orchestration: build, attest, link, then
//!   [`fabric::OverlayFabric::subscribe`],
//!   [`fabric::OverlayFabric::publish`] and
//!   [`fabric::OverlayFabric::unsubscribe`].
//!
//! ## Example
//!
//! ```
//! use scbr::ids::ClientId;
//! use scbr::{PublicationSpec, SubscriptionSpec};
//! use scbr_overlay::fabric::{FabricConfig, OverlayFabric};
//! use scbr_overlay::topology::Topology;
//!
//! // A 3-broker chain with pre-shared trust (fast; see
//! // `FabricConfig::attested` for the fully attested mode).
//! let mut fabric = OverlayFabric::build(Topology::line(3), FabricConfig::preshared(1))?;
//! fabric.subscribe(0, ClientId(7), &SubscriptionSpec::new().eq("symbol", "HAL"))?;
//! let deliveries = fabric.publish(2, &[PublicationSpec::new().attr("symbol", "HAL")])?;
//! assert_eq!(deliveries.len(), 1);
//! assert_eq!(deliveries[0].client, ClientId(7));
//! # Ok::<(), scbr_overlay::OverlayError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod broker;
pub mod error;
pub mod fabric;
pub mod forwarding;
pub mod topology;

pub use broker::{Broker, BrokerStats, Origin};
pub use error::OverlayError;
pub use fabric::{Delivery, FabricConfig, OverlayFabric, Propagation, Trust};
pub use forwarding::ForwardingTable;
pub use topology::Topology;
