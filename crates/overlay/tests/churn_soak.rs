//! Churn soak: a fully attested 3-hop overlay driven through ~1 000
//! subscribe/publish/unsubscribe operations.
//!
//! Every round pushes a covering pair (broad + narrow) through the chain,
//! publishes a batch end to end, then retires the broad subscription —
//! forcing an *uncovering* promotion of the narrow one at every hop —
//! and finally retires the narrow one too. Throughout, the test pins the
//! operational invariants a long-lived deployment depends on:
//!
//! * **ECALL discipline**: a publication batch still costs exactly one
//!   enclave crossing per broker it visits, no matter how much
//!   subscription churn preceded it;
//! * **counter consistency**: per broker,
//!   `rows == forwarded_total − removed` and `uncovered ≤ forwarded_total`
//!   after every round (the `forwarded − removed + uncovered` ledger);
//! * **no leaks**: index sizes and forwarding tables return to their
//!   baseline after each round's removals, and to zero when the anchor
//!   subscription finally goes too.

use scbr::ids::ClientId;
use scbr::{PublicationSpec, SubscriptionSpec};
use scbr_overlay::fabric::{FabricConfig, OverlayFabric};
use scbr_overlay::Topology;

/// Rounds of (2 subscribes + 1 publish + 2 unsubscribes) — ≈1 000
/// lifecycle operations over the soak.
const ROUNDS: usize = 200;

fn assert_counters(fabric: &OverlayFabric, round: usize) {
    for stats in fabric.broker_stats() {
        assert_eq!(
            stats.forwarded,
            stats.forwarded_total - stats.removed,
            "round {round}: rows != forwarded_total - removed at router {}",
            stats.router
        );
        assert!(
            stats.uncovered <= stats.forwarded_total,
            "round {round}: uncovered exceeds forwarded_total at router {}",
            stats.router
        );
    }
}

#[test]
fn attested_three_hop_overlay_survives_heavy_churn() {
    let routers = 4; // a line: 3 hops end to end
    let mut fabric =
        OverlayFabric::build(Topology::line(routers), FabricConfig::attested(77)).expect("build");

    // A long-lived anchor at the far end keeps every publication crossing
    // the full chain for the whole soak.
    let anchor = fabric
        .subscribe(routers - 1, ClientId(1_000), &SubscriptionSpec::new().ge("price", 0.0))
        .expect("anchor subscribes");
    // Anchor copies: one edge entry plus one link-interface entry per hop.
    let baseline_entries = fabric.total_index_entries();
    assert_eq!(baseline_entries, routers);
    let baseline_rows = fabric.total_forwarded();

    let mut uncovered_before = fabric.total_uncovered();
    for round in 0..ROUNDS {
        // A covering pair at the near end: the narrow one is pruned
        // behind the broad one on every link it would travel.
        let threshold = (round % 4) as f64;
        let broad = fabric
            .subscribe(0, ClientId(2), &SubscriptionSpec::new().gt("price", threshold))
            .expect("broad subscribes");
        let narrow = fabric
            .subscribe(0, ClientId(3), &SubscriptionSpec::new().gt("price", threshold + 2.0))
            .expect("narrow subscribes");

        // One batch, far edge → near edge: exactly one crossing per
        // broker, independent of all the churn that came before.
        fabric.reset_counters();
        let deliveries = fabric
            .publish(
                routers - 1,
                &[
                    PublicationSpec::new().attr("price", 7.0),
                    PublicationSpec::new().attr("price", threshold + 1.0),
                ],
            )
            .expect("publish");
        assert_eq!(
            fabric.total_ecalls(),
            routers as u64,
            "round {round}: a batch costs one ECALL per hop, even under churn"
        );
        // price 7 matches anchor + broad + narrow; threshold+1 matches
        // anchor + broad only.
        assert_eq!(deliveries.len(), 5, "round {round}: exact delivery under churn");

        // Retiring the broad subscription uncovers the narrow one at
        // every hop of the chain.
        assert!(fabric.unsubscribe(broad).expect("unsubscribe broad"));
        let uncovered_now = fabric.total_uncovered();
        assert_eq!(
            uncovered_now - uncovered_before,
            (routers - 1) as u64,
            "round {round}: one uncovering promotion per link"
        );
        uncovered_before = uncovered_now;
        assert_counters(&fabric, round);

        // Retiring the narrow one restores the baseline exactly.
        assert!(fabric.unsubscribe(narrow).expect("unsubscribe narrow"));
        assert_counters(&fabric, round);
        assert_eq!(
            fabric.total_index_entries(),
            baseline_entries,
            "round {round}: leaked index entries"
        );
        assert_eq!(
            fabric.total_forwarded(),
            baseline_rows,
            "round {round}: leaked forwarding rows"
        );
    }

    // The cumulative ledger survived ~1k operations.
    assert_eq!(fabric.total_removed(), 2 * (ROUNDS as u64) * (routers as u64 - 1));
    // Finally retire the anchor: the whole fabric drains to empty.
    assert!(fabric.unsubscribe(anchor).expect("unsubscribe anchor"));
    assert_eq!(fabric.total_index_entries(), 0, "anchor removal leaves no entries");
    assert_eq!(fabric.total_forwarded(), 0, "anchor removal leaves no rows");
    assert!(
        fabric
            .publish(0, &[PublicationSpec::new().attr("price", 3.0)])
            .expect("publish")
            .is_empty(),
        "an empty overlay delivers nothing"
    );
}
