//! Failover and sealed recovery: the crash → rejoin path end to end.
//!
//! A broker crash loses all volatile state; recovery combines two
//! sources with different trust stories:
//!
//! * the **sealed recovery record** (engine snapshot with delivery
//!   identities, live envelopes with origins, per-link covering tables),
//!   rollback-protected by a platform monotonic counter — a stale record
//!   served by the untrusted host must be *refused*;
//! * **neighbour replay** of each surviving link's live forwarded set,
//!   which reconciles everything that changed while the broker was down:
//!   new subscriptions re-admit, removed ones are dropped with full
//!   uncovering bookkeeping and propagated down the reverse path.
//!
//! These tests pin the acceptance properties: recovery traffic touches
//! only the crashed broker's incident links, restored link interfaces
//! stay interfaces (not edge clients), rollback is refused, sequence
//! gaps surface as typed liveness events, and post-rejoin delivery is
//! exact.

use scbr::ids::{ClientId, KeyEpoch};
use scbr::{PublicationSpec, SubscriptionSpec};
use scbr_overlay::fabric::{FabricConfig, OverlayFabric};
use scbr_overlay::{
    Delivery, HeartbeatConfig, Lifecycle, LinkEvent, OverlayError, SuspectReason, Topology,
};
use sgx_sim::SgxError;

/// Recovery traffic stays on the crashed broker's incident links: with
/// no churn during the outage, a rejoin exchanges handshake + replay
/// frames with the neighbours and *nothing* beyond them — the tree does
/// not re-propagate.
#[test]
fn rejoin_touches_only_incident_links() {
    let mut fabric =
        OverlayFabric::build(Topology::line(4), FabricConfig::attested(50)).expect("build");
    // Interest everywhere: a broad sub at each end populates every
    // forwarding table.
    fabric.subscribe(0, ClientId(1), &SubscriptionSpec::new().gt("price", 0.0)).unwrap();
    fabric.subscribe(3, ClientId(2), &SubscriptionSpec::new().lt("volume", 100.0)).unwrap();

    fabric.crash(1).unwrap();
    let before = fabric.edge_frames().clone();
    let report = fabric.restart(1).unwrap();
    let after = fabric.edge_frames().clone();

    // Frames moved only on (0↔1) and (1↔2).
    let incident = [(0, 1), (1, 0), (1, 2), (2, 1)];
    for (edge, count) in &after {
        let delta = count - before.get(edge).copied().unwrap_or(0);
        if incident.contains(edge) {
            continue;
        }
        assert_eq!(delta, 0, "non-incident edge {edge:?} carried {delta} recovery frames");
    }
    let incident_delta: u64 = incident
        .iter()
        .map(|e| after.get(e).copied().unwrap_or(0) - before.get(e).copied().unwrap_or(0))
        .sum();
    assert_eq!(report.recovery_frames, incident_delta, "report matches the per-edge ledger");
    assert!(report.recovery_frames > 0, "handshakes + replay happened");
    // The two broad subscriptions were restored from the seal (both are
    // link-interface copies at router 1); the neighbours re-confirmed
    // the rows they had forwarded to router 1.
    assert_eq!(report.restored, 2, "one link-interface copy per direction");
    assert_eq!(report.replayed, 2, "one replayed envelope per neighbour");
    assert_eq!(report.dropped_stale, 0);

    // Delivery is exact after the rejoin.
    let deliveries = fabric
        .publish(2, &[PublicationSpec::new().attr("price", 5.0).attr("volume", 50.0)])
        .unwrap();
    assert_eq!(
        deliveries,
        vec![
            Delivery { router: 0, client: ClientId(1), publication: 0 },
            Delivery { router: 3, client: ClientId(2), publication: 0 },
        ]
    );
}

/// A restored broker re-registers link interfaces as *interfaces*: the
/// subscriber behind it gets its deliveries at its own edge broker, and
/// the restored middle broker never "delivers" them locally.
#[test]
fn restored_link_interfaces_stay_interfaces() {
    let mut fabric =
        OverlayFabric::build(Topology::line(3), FabricConfig::attested(51)).expect("build");
    fabric.subscribe(0, ClientId(7), &SubscriptionSpec::new().eq("symbol", "HAL")).unwrap();
    fabric.crash(1).unwrap();
    fabric.restart(1).unwrap();
    // Publish behind the restored broker: the match at router 1 must
    // route on the link interface toward router 0 — an edge-semantics
    // regression would deliver to a phantom local client at router 1.
    let deliveries = fabric.publish(2, &[PublicationSpec::new().attr("symbol", "HAL")]).unwrap();
    assert_eq!(deliveries, vec![Delivery { router: 0, client: ClientId(7), publication: 0 }]);
}

/// A host serving a stale-but-authentic sealed record is caught by the
/// monotonic counter: the broker refuses to rejoin and stays crashed;
/// the genuine latest record still restores.
#[test]
fn stale_sealed_record_is_refused() {
    let mut fabric =
        OverlayFabric::build(Topology::line(2), FabricConfig::attested(52)).expect("build");
    fabric.subscribe(1, ClientId(1), &SubscriptionSpec::new().gt("price", 1.0)).unwrap();
    let stale = fabric.sealed_record(1).expect("checkpoint after first subscribe");
    fabric.subscribe(1, ClientId(2), &SubscriptionSpec::new().gt("price", 2.0)).unwrap();
    let latest = fabric.sealed_record(1).expect("checkpoint after second subscribe");

    fabric.crash(1).unwrap();
    fabric.set_sealed_record(1, stale);
    let result = fabric.restart(1);
    assert!(
        matches!(result, Err(OverlayError::Sgx(SgxError::UnsealFailed { .. }))),
        "stale record must be refused, got {result:?}"
    );
    assert_eq!(fabric.lifecycle(1), Lifecycle::Crashed, "refused broker stays crashed");

    // The genuine latest record restores both subscriptions.
    fabric.set_sealed_record(1, latest);
    let report = fabric.restart(1).unwrap();
    assert_eq!(report.restored, 2);
    assert_eq!(fabric.lifecycle(1), Lifecycle::Serving);
    let deliveries = fabric.publish(0, &[PublicationSpec::new().attr("price", 3.0)]).unwrap();
    assert_eq!(deliveries.len(), 2);
}

/// A subscription removed while a broker was down is reconciled at
/// rejoin: the neighbour's replay no longer vouches for it, so the
/// rejoiner drops it and propagates authenticated `sub-drop`s down the
/// reverse path — the whole fabric drains back to zero state.
#[test]
fn removals_during_outage_reconcile_via_replay() {
    let mut fabric =
        OverlayFabric::build(Topology::line(3), FabricConfig::preshared(53)).expect("build");
    let broad =
        fabric.subscribe(0, ClientId(1), &SubscriptionSpec::new().gt("price", 0.0)).unwrap();
    assert_eq!(fabric.total_index_entries(), 3, "one copy per broker");

    fabric.crash(1).unwrap();
    // The removal happens while router 1 is down: the sub-remove frame
    // toward it is dropped, and routers 1 (sealed state) and 2 (live
    // state) still hold the subscription.
    assert!(fabric.unsubscribe(broad).unwrap());
    assert!(fabric.dropped_frames() > 0);

    let report = fabric.restart(1).unwrap();
    assert_eq!(report.restored, 1, "the stale subscription came back from the seal");
    assert_eq!(report.dropped_stale, 1, "replay reconciliation dropped it again");
    assert_eq!(fabric.total_index_entries(), 0, "the drop propagated to router 2");
    assert_eq!(fabric.total_forwarded(), 0, "no leaked forwarding rows anywhere");
    assert!(fabric.publish(2, &[PublicationSpec::new().attr("price", 9.0)]).unwrap().is_empty());
}

/// A subscription added while a broker was down reaches it (and its
/// subtree) through the neighbour replay, with normal covering
/// bookkeeping.
#[test]
fn additions_during_outage_arrive_via_replay() {
    let mut fabric =
        OverlayFabric::build(Topology::line(3), FabricConfig::preshared(54)).expect("build");
    fabric.crash(1).unwrap();
    fabric.subscribe(0, ClientId(5), &SubscriptionSpec::new().eq("symbol", "INTC")).unwrap();
    // The forward toward the crashed broker was dropped; router 2 knows
    // nothing either.
    assert_eq!(fabric.total_index_entries(), 1);

    let report = fabric.restart(1).unwrap();
    assert_eq!(report.replayed, 1, "router 0 replayed the new envelope");
    assert_eq!(fabric.total_index_entries(), 3, "routers 1 and 2 now hold interface copies");
    let deliveries = fabric.publish(2, &[PublicationSpec::new().attr("symbol", "INTC")]).unwrap();
    assert_eq!(deliveries, vec![Delivery { router: 0, client: ClientId(5), publication: 0 }]);
}

/// A frame lost on a sealed link surfaces as a typed `Gap` event (the
/// liveness signal) and is counted in the broker stats; re-keying the
/// link through a crash/rejoin heals it.
#[test]
fn lost_frames_surface_as_gap_events_and_rekey_heals() {
    let mut fabric =
        OverlayFabric::build(Topology::line(2), FabricConfig::attested(55)).expect("build");
    fabric.subscribe(1, ClientId(3), &SubscriptionSpec::new().gt("price", 0.0)).unwrap();
    fabric.take_events();

    // First publication: the frame 0→1 is lost in transit.
    fabric.drop_next_frame(0, 1);
    let lost = fabric.publish(0, &[PublicationSpec::new().attr("price", 1.0)]).unwrap();
    assert!(lost.is_empty(), "the only interested subscriber is behind the lost frame");
    assert_eq!(fabric.total_gaps(), 0, "a dropped frame alone is silent");

    // Second publication: its frame arrives with a sequence one ahead —
    // authentic proof of the loss. Publish succeeds; the event fires.
    let after = fabric.publish(0, &[PublicationSpec::new().attr("price", 2.0)]).unwrap();
    assert!(after.is_empty(), "the gapped link cannot deliver");
    assert_eq!(fabric.total_gaps(), 1);
    let events = fabric.take_events();
    assert!(
        events.iter().any(|(router, e)| *router == 1
            && matches!(e, LinkEvent::Gap { link: 0, expected: 0, got: 1 })),
        "typed gap event with the exact sequence window, got {events:?}"
    );

    // The link is dead until re-keyed: crash/rejoin resets both ends.
    fabric.crash(1).unwrap();
    let report = fabric.restart(1).unwrap();
    assert_eq!(report.restored, 1);
    let healed = fabric.publish(0, &[PublicationSpec::new().attr("price", 3.0)]).unwrap();
    assert_eq!(healed, vec![Delivery { router: 1, client: ClientId(3), publication: 0 }]);
}

/// The operator can advance the key epoch across a crash: publications
/// after the rejoin carry the new epoch (the restart does not resurrect
/// the old one).
#[test]
fn epoch_advances_across_a_restart() {
    let mut fabric = OverlayFabric::build(
        Topology::line(2),
        FabricConfig { epoch: KeyEpoch(1), ..FabricConfig::preshared(56) },
    )
    .expect("build");
    fabric.subscribe(0, ClientId(1), &SubscriptionSpec::new().gt("x", 0.0)).unwrap();
    fabric.crash(1).unwrap();
    fabric.set_epoch(KeyEpoch(2));
    fabric.restart(1).unwrap();
    assert_eq!(fabric.epoch(), KeyEpoch(2));
    let deliveries = fabric.publish(1, &[PublicationSpec::new().attr("x", 1.0)]).unwrap();
    assert_eq!(deliveries.len(), 1);
}

/// Crashing and restarting the same broker repeatedly keeps recovering
/// exactly, and the counter ledger — including the pruned counter, which
/// a replay must not double-count — survives every generation.
#[test]
fn repeated_crash_rejoin_cycles_stay_consistent() {
    let mut fabric =
        OverlayFabric::build(Topology::star(4), FabricConfig::preshared(57)).expect("build");
    fabric.subscribe(1, ClientId(1), &SubscriptionSpec::new().gt("price", 0.0)).unwrap();
    // Covered by client 1's interest on the hub's links toward 3: the
    // hub prunes it exactly once, and rejoins must not count it again.
    fabric.subscribe(2, ClientId(2), &SubscriptionSpec::new().gt("price", 10.0)).unwrap();
    fabric.subscribe(3, ClientId(3), &SubscriptionSpec::new().eq("symbol", "HAL")).unwrap();
    let entries = fabric.total_index_entries();
    let rows = fabric.total_forwarded();
    let pruned = fabric.broker_stats()[0].pruned;
    assert!(pruned > 0, "the covering pair prunes at the hub");
    for round in 0..3 {
        fabric.crash(0).unwrap();
        fabric.restart(0).unwrap();
        assert_eq!(fabric.total_index_entries(), entries, "round {round}: entries recovered");
        assert_eq!(fabric.total_forwarded(), rows, "round {round}: rows recovered");
        assert_eq!(
            fabric.broker_stats()[0].pruned,
            pruned,
            "round {round}: replay must not double-count pruning"
        );
        for stats in fabric.broker_stats() {
            assert_eq!(
                stats.forwarded,
                stats.forwarded_total - stats.removed,
                "round {round}: ledger holds at router {}",
                stats.router
            );
        }
        let deliveries = fabric
            .publish(0, &[PublicationSpec::new().attr("price", 20.0).attr("symbol", "HAL")])
            .unwrap();
        assert_eq!(deliveries.len(), 3, "round {round}: delivery exact after rejoin");
    }
}

/// Two *adjacent* crashed brokers rejoin sequentially: the first restart
/// skips the still-dead neighbour (no replay possible), serves again,
/// and the second restart's replay reconciles both sides — including a
/// removal that happened while both were down.
#[test]
fn adjacent_crashes_rejoin_sequentially() {
    let mut fabric =
        OverlayFabric::build(Topology::line(3), FabricConfig::preshared(58)).expect("build");
    let doomed =
        fabric.subscribe(0, ClientId(1), &SubscriptionSpec::new().gt("price", 0.0)).unwrap();
    let keep =
        fabric.subscribe(2, ClientId(2), &SubscriptionSpec::new().eq("symbol", "HAL")).unwrap();

    fabric.crash(1).unwrap();
    fabric.crash(2).unwrap();
    // Removed while both 1 and 2 are down: only router 0 hears.
    assert!(fabric.unsubscribe(doomed).unwrap());

    // Restart 1 first: its neighbour 2 is still dead, so the rejoin
    // replays from 0 alone and completes. 0 no longer vouches for the
    // doomed subscription, so 1 drops its restored copy; the sub-drop
    // toward 2 is lost (2 is down) — 2 reconciles on its own rejoin.
    let report = fabric.restart(1).unwrap();
    assert_eq!(fabric.lifecycle(1), Lifecycle::Serving);
    assert_eq!(report.dropped_stale, 1, "stale sub dropped via router 0's replay");

    // Restart 2: full replay from the now-serving 1.
    let report = fabric.restart(2).unwrap();
    assert_eq!(fabric.lifecycle(2), Lifecycle::Serving);
    assert_eq!(report.dropped_stale, 1, "router 2's restored copy reconciled too");

    // Everything converged: only `keep` is live anywhere.
    assert_eq!(fabric.total_index_entries(), 3, "one copy of `keep` per broker");
    let deliveries = fabric
        .publish(0, &[PublicationSpec::new().attr("symbol", "HAL").attr("price", 5.0)])
        .unwrap();
    assert_eq!(deliveries, vec![Delivery { router: 2, client: ClientId(2), publication: 0 }]);
    assert!(fabric.unsubscribe(keep).unwrap());
    assert_eq!(fabric.total_index_entries(), 0, "drained clean after the double failure");
    assert_eq!(fabric.total_forwarded(), 0);
}

// ---- timer-driven failure detection ------------------------------------

/// Regression for the swallowed-tick bug: a `Serving` broker's timer
/// tick used to early-return before any steady-state work could run.
/// With heartbeats configured, one detection round makes every serving
/// broker emit heartbeat frames on its established links.
#[test]
fn serving_brokers_do_tick_work() {
    let mut fabric = OverlayFabric::build(
        Topology::line(3),
        FabricConfig::preshared(60).with_heartbeats(HeartbeatConfig::fast()),
    )
    .expect("build");
    assert_eq!(fabric.total_heartbeats(), 0);
    fabric.tick_round().unwrap();
    // Each broker heartbeats every established link: 2·(edge count).
    assert_eq!(fabric.total_heartbeats(), 4, "one heartbeat per directed edge per round");
    fabric.tick_round().unwrap();
    assert_eq!(fabric.total_heartbeats(), 8);
    // Heartbeats are pure liveness: no deliveries, no index movement,
    // no suspicion among healthy brokers.
    assert!(fabric.suspicions().is_empty());
    assert!(fabric.settled());
}

/// The zero-operator recovery path: a broker crashes silently, and the
/// detection loop alone — heartbeat silence, quorum suspicion, fence,
/// rejoin — returns it to `Serving`. No `restart` call anywhere.
#[test]
fn silent_crash_is_detected_and_rejoined_automatically() {
    let mut fabric = OverlayFabric::build(
        Topology::line(3),
        FabricConfig::preshared(61).with_heartbeats(HeartbeatConfig::fast()),
    )
    .expect("build");
    fabric.subscribe(0, ClientId(1), &SubscriptionSpec::new().gt("price", 0.0)).unwrap();
    fabric.subscribe(2, ClientId(2), &SubscriptionSpec::new().eq("symbol", "HAL")).unwrap();

    fabric.crash(1).unwrap();
    let rejoins = fabric.run_detection(32).expect("fabric settles");
    assert_eq!(rejoins.len(), 1, "exactly one automatic fence-and-restart");
    assert_eq!(rejoins[0].router, 1);
    assert!(rejoins[0].round >= HeartbeatConfig::fast().suspect_after, "suspicion needs silence");
    assert_eq!(fabric.lifecycle(1), Lifecycle::Serving);
    assert!(fabric.settled());

    // The drop ledger is assertable per edge and sums to the total.
    let ledger: u64 = fabric.edge_drops().values().sum();
    assert_eq!(ledger, fabric.dropped_frames());
    assert!(
        fabric.edge_drops().keys().all(|&(_, to)| to == 1),
        "only frames toward the crashed broker were lost: {:?}",
        fabric.edge_drops()
    );

    // Delivery is exact again, both directions through the healed hop.
    let deliveries = fabric
        .publish(1, &[PublicationSpec::new().attr("price", 5.0).attr("symbol", "HAL")])
        .unwrap();
    assert_eq!(
        deliveries,
        vec![
            Delivery { router: 0, client: ClientId(1), publication: 0 },
            Delivery { router: 2, client: ClientId(2), publication: 0 },
        ]
    );
}

/// Two *adjacent* brokers crash in the same window and both recover
/// with zero operator calls: the detection loop fences each on its live
/// side's accusation, the replay request toward the still-rejoining
/// neighbour parks until that neighbour serves, then drains. A removal
/// during the double outage reconciles through the chained replays.
#[test]
fn adjacent_concurrent_crashes_both_recover_automatically() {
    let mut fabric = OverlayFabric::build(
        Topology::line(5),
        FabricConfig::preshared(62).with_heartbeats(HeartbeatConfig::fast()),
    )
    .expect("build");
    let doomed =
        fabric.subscribe(0, ClientId(1), &SubscriptionSpec::new().gt("price", 0.0)).unwrap();
    fabric.subscribe(4, ClientId(2), &SubscriptionSpec::new().eq("symbol", "HAL")).unwrap();

    // Both middle brokers die in the same window, and interest churns
    // while they are down: only router 0 hears the removal.
    fabric.crash(1).unwrap();
    fabric.crash(2).unwrap();
    assert!(fabric.unsubscribe(doomed).unwrap());

    let frames_before = fabric.edge_frames().clone();
    fabric.take_events();
    let rejoins = fabric.run_detection(64).expect("both rejoins settle");
    let victims: Vec<usize> = rejoins.iter().map(|r| r.router).collect();
    assert_eq!(victims, vec![1, 2], "each crashed broker fenced exactly once, no false positives");
    for id in 0..5 {
        assert_eq!(fabric.lifecycle(id), Lifecycle::Serving, "router {id} serving");
    }
    assert!(fabric.settled());
    let events = fabric.take_events();
    for router in [1, 2] {
        assert!(
            events.iter().any(|(r, e)| *r == router && matches!(e, LinkEvent::Rejoined { .. })),
            "router {router} completed a full rejoin"
        );
    }

    // Frame ledger: replay traffic stayed on the crashed brokers'
    // incident edges. The far edge (3↔4) carried exactly its heartbeat
    // load (one frame per direction per round) plus the single
    // reconciliation `sub-drop` for the mid-outage removal, which
    // legitimately travels the stale subscription's reverse path.
    let after = fabric.edge_frames().clone();
    let delta = |edge: (usize, usize)| {
        after.get(&edge).copied().unwrap_or(0) - frames_before.get(&edge).copied().unwrap_or(0)
    };
    let rounds_delta = fabric.rounds();
    assert_eq!(delta((4, 3)), rounds_delta, "4→3 carried heartbeats only");
    assert_eq!(delta((3, 4)), rounds_delta + 1, "3→4: heartbeats + one reconciliation sub-drop");

    // The mid-outage removal reconciled everywhere: only `HAL` interest
    // survives (edge copy at 4 plus one interface copy per other hop).
    assert_eq!(fabric.total_index_entries(), 5, "stale interest fully reconciled");
    let deliveries = fabric
        .publish(0, &[PublicationSpec::new().attr("price", 9.0).attr("symbol", "HAL")])
        .unwrap();
    assert_eq!(deliveries, vec![Delivery { router: 4, client: ClientId(2), publication: 0 }]);
}

/// The hardest concurrent shape: a leaf and its *only* neighbour die in
/// the same window. The leaf has no live neighbour left to accuse it,
/// so it is only reachable through a chain — the middle broker is
/// fenced first on the far side's accusation, rejoins, then itself
/// accrues silence toward the dead leaf and accuses it. The middle
/// broker's first pull toward the leaf lands on a corpse; the
/// timer-paced retry completes the heal once the leaf is back.
#[test]
fn leaf_and_its_only_neighbour_both_recover_automatically() {
    let mut fabric = OverlayFabric::build(
        Topology::line(3),
        FabricConfig::preshared(63).with_heartbeats(HeartbeatConfig::fast()),
    )
    .expect("build");
    fabric.subscribe(0, ClientId(1), &SubscriptionSpec::new().gt("price", 0.0)).unwrap();
    fabric.subscribe(2, ClientId(2), &SubscriptionSpec::new().eq("symbol", "HAL")).unwrap();

    fabric.crash(0).unwrap();
    fabric.crash(1).unwrap();

    fabric.take_events();
    let rejoins = fabric.run_detection(64).expect("cascaded detection settles");
    let victims: Vec<usize> = rejoins.iter().map(|r| r.router).collect();
    assert_eq!(victims, vec![1, 0], "the chain unwedges inward: middle first, then the leaf");
    for id in 0..3 {
        assert_eq!(fabric.lifecycle(id), Lifecycle::Serving, "router {id} serving");
    }
    assert!(fabric.settled());
    let events = fabric.take_events();
    for router in [0, 1] {
        assert!(
            events.iter().any(|(r, e)| *r == router && matches!(e, LinkEvent::Rejoined { .. })),
            "router {router} completed a full rejoin"
        );
    }
    // The middle broker's heal of the believed-dead leaf link completed
    // through the retried pull.
    assert!(
        events.iter().any(|(r, e)| *r == 1 && matches!(e, LinkEvent::Healed { link: 0, .. })),
        "router 1 healed the leaf link after its first request died with the corpse"
    );

    // The leaf's edge subscription survived the double outage end to end.
    let deliveries = fabric
        .publish(2, &[PublicationSpec::new().attr("price", 3.0).attr("symbol", "HAL")])
        .unwrap();
    assert_eq!(
        deliveries,
        vec![
            Delivery { router: 0, client: ClientId(1), publication: 0 },
            Delivery { router: 2, client: ClientId(2), publication: 0 },
        ]
    );
}

/// Regression for the stale-liveness-view wedge: a `Restart` naming a
/// neighbour that is actually alive used to leave that link un-rekeyed
/// forever (skipped at rejoin, never retried). With heartbeats, the
/// serving broker probes the missing link, re-keys it, pulls a replay
/// and reports `Healed` — without fencing the falsely-accused neighbour.
#[test]
fn stale_liveness_view_heals_by_probe_and_replay() {
    let mut fabric = OverlayFabric::build(
        Topology::line(3),
        FabricConfig::attested(63).with_heartbeats(HeartbeatConfig::fast()),
    )
    .expect("build");
    fabric.subscribe(0, ClientId(1), &SubscriptionSpec::new().gt("price", 0.0)).unwrap();
    fabric.subscribe(2, ClientId(2), &SubscriptionSpec::new().eq("symbol", "HAL")).unwrap();

    fabric.crash(1).unwrap();
    // The operator's liveness view is stale: router 2 is alive, but the
    // restart names it dead. The rejoin replays from router 0 alone and
    // completes — with the 1↔2 link missing.
    fabric.restart_with_liveness_view(1, &[2]).expect("rejoin from the live side completes");
    assert_eq!(fabric.lifecycle(1), Lifecycle::Serving);
    assert!(!fabric.settled(), "the skipped link is still believed dead");

    fabric.take_events();
    let rejoins = fabric.run_detection(32).expect("heal settles");
    assert!(rejoins.is_empty(), "healing a stale view must not fence anyone");
    let events = fabric.take_events();
    assert!(
        events.iter().any(|(r, e)| *r == 1 && matches!(e, LinkEvent::Healed { link: 2, .. })),
        "router 1 healed the falsely-dead link via probe + replay, got {events:?}"
    );
    assert!(fabric.settled());

    // Interest on both sides of the healed link matches again.
    let deliveries = fabric
        .publish(1, &[PublicationSpec::new().attr("price", 2.0).attr("symbol", "HAL")])
        .unwrap();
    assert_eq!(
        deliveries,
        vec![
            Delivery { router: 0, client: ClientId(1), publication: 0 },
            Delivery { router: 2, client: ClientId(2), publication: 0 },
        ]
    );
}

/// False-positive suppression: a slow-but-alive broker — its host ticks
/// (and therefore its heartbeats) delayed by a stride, not lost — is
/// never declared suspect as long as its delay stays inside the
/// suspicion window.
#[test]
fn slow_but_alive_broker_is_never_suspected() {
    let mut fabric = OverlayFabric::build(
        Topology::line(3),
        FabricConfig::preshared(64).with_heartbeats(HeartbeatConfig::fast()),
    )
    .expect("build");
    // Heartbeats arrive every 3rd round; suspicion needs 4 silent ticks.
    fabric.set_tick_stride(1, 3);
    fabric.take_events();
    for _ in 0..24 {
        let rejoins = fabric.tick_round().unwrap();
        assert!(rejoins.is_empty(), "nothing must ever be fenced");
    }
    let events = fabric.take_events();
    assert!(
        !events.iter().any(|(_, e)| matches!(e, LinkEvent::Suspect { .. })),
        "a delayed-but-alive broker must never be suspected, got {events:?}"
    );
    for id in 0..3 {
        assert_eq!(fabric.lifecycle(id), Lifecycle::Serving);
    }
}

/// A wedged sealed link (unhealed sequence gap) is escalated by the
/// timers: after `gap_grace` ticks the receiver declares
/// `Suspect { reason: Gap }`, re-keys the link on its own, pulls a
/// replay over the fresh channel and reports `Healed` — all without any
/// crash, restart, or node-death quorum (the peer provably lives).
#[test]
fn wedged_gap_link_rekeys_and_heals_itself() {
    let mut fabric = OverlayFabric::build(
        Topology::line(2),
        FabricConfig::attested(65).with_heartbeats(HeartbeatConfig::fast()),
    )
    .expect("build");
    fabric.subscribe(1, ClientId(3), &SubscriptionSpec::new().gt("price", 0.0)).unwrap();

    // Lose one frame 0→1, then let the next one surface the gap.
    fabric.drop_next_frame(0, 1);
    assert!(fabric.publish(0, &[PublicationSpec::new().attr("price", 1.0)]).unwrap().is_empty());
    assert!(fabric.publish(0, &[PublicationSpec::new().attr("price", 2.0)]).unwrap().is_empty());
    assert_eq!(fabric.total_gaps(), 1, "the gap surfaced");

    fabric.take_events();
    let rejoins = fabric.run_detection(32).expect("link-level heal settles");
    assert!(rejoins.is_empty(), "a gap heals at link level; it must never fence the peer");
    let events = fabric.take_events();
    assert!(
        events.iter().any(|(r, e)| *r == 1
            && matches!(e, LinkEvent::Suspect { link: 0, reason: SuspectReason::Gap })),
        "the grace timer escalated the standing gap, got {events:?}"
    );
    assert!(
        events.iter().any(|(r, e)| *r == 1 && matches!(e, LinkEvent::Healed { link: 0, .. })),
        "the wedged link was re-keyed and replayed, got {events:?}"
    );
    assert!(fabric.settled());

    // The re-keyed link carries publications again.
    let deliveries = fabric.publish(0, &[PublicationSpec::new().attr("price", 3.0)]).unwrap();
    assert_eq!(deliveries, vec![Delivery { router: 1, client: ClientId(3), publication: 0 }]);
}
