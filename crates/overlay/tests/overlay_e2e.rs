//! End-to-end overlay integration: a fully attested broker chain.
//!
//! Covers the acceptance path of the overlay subsystem: SK provisioning
//! via remote attestation into every broker, mutual-quote link
//! establishment on every tree edge, covering-pruned subscription
//! propagation, and multi-hop publication forwarding with exact edge
//! delivery — plus the negative path: a router whose quote fails the
//! `require_mr_enclave` policy never gets a link.

use scbr::ids::ClientId;
use scbr::index::IndexKind;
use scbr::{PublicationSpec, SubscriptionSpec};
use scbr_overlay::broker::{Broker, Input, LinkFrame, Output};
use scbr_overlay::fabric::{router_measurement, FabricConfig, OverlayFabric, ROUTER_ENCLAVE_CODE};
use scbr_overlay::{Delivery, Lifecycle, OverlayError, Topology};
use sgx_sim::attest::{AttestationService, VerifierPolicy};
use sgx_sim::SgxError;
use std::collections::VecDeque;

fn out_frames(outputs: &[Output]) -> Vec<LinkFrame> {
    outputs
        .iter()
        .filter_map(|o| match o {
            Output::Frame(f) => Some(f.clone()),
            _ => None,
        })
        .collect()
}

/// Shuttles frames between two brokers until quiescent (the two-node
/// version of the fabric's scheduler), collecting local deliveries.
fn drive(
    a: &mut Broker,
    b: &mut Broker,
    first: Vec<Output>,
) -> Result<Vec<scbr_overlay::broker::LocalDelivery>, OverlayError> {
    let mut deliveries = Vec::new();
    let mut queue: VecDeque<LinkFrame> = out_frames(&first).into();
    for o in first {
        if let Output::Delivery(d) = o {
            deliveries.push(d);
        }
    }
    while let Some(frame) = queue.pop_front() {
        let target = if frame.to == a.id() { &mut *a } else { &mut *b };
        let outs = target.step(0, Input::Frame { from: frame.from, bytes: frame.bytes })?;
        queue.extend(out_frames(&outs));
        for o in outs {
            if let Output::Delivery(d) = o {
                deliveries.push(d);
            }
        }
    }
    Ok(deliveries)
}

/// A 4-broker chain: publications injected at one end must cross 3 links
/// (3 hops) to reach a subscriber at the other end.
#[test]
fn three_hop_chain_delivers_exactly_the_matching_publications() {
    let mut fabric =
        OverlayFabric::build(Topology::line(4), FabricConfig::attested(42)).expect("build");

    // Subscribers at the far edge (router 0); publications enter at 3.
    fabric.subscribe(0, ClientId(1), &SubscriptionSpec::new().eq("symbol", "HAL")).unwrap();
    fabric.subscribe(0, ClientId(2), &SubscriptionSpec::new().gt("price", 50.0)).unwrap();
    // A bystander in the middle.
    fabric.subscribe(1, ClientId(3), &SubscriptionSpec::new().eq("symbol", "IBM")).unwrap();

    let publications = [
        PublicationSpec::new().attr("symbol", "HAL").attr("price", 10.0), // -> client 1
        PublicationSpec::new().attr("symbol", "IBM").attr("price", 90.0), // -> clients 2, 3
        PublicationSpec::new().attr("symbol", "XYZ").attr("price", 1.0),  // -> nobody
    ];
    let deliveries = fabric.publish(3, &publications).unwrap();
    assert_eq!(
        deliveries,
        vec![
            Delivery { router: 0, client: ClientId(1), publication: 0 },
            Delivery { router: 0, client: ClientId(2), publication: 1 },
            Delivery { router: 1, client: ClientId(3), publication: 1 },
        ]
    );

    // The whole batch crossed each forwarding hop in one ecall: router 3
    // matched once, and only the links with interest saw traffic.
    let stats = fabric.broker_stats();
    assert!(stats.iter().all(|s| s.ecalls > 0), "every broker crossed its gate");
}

/// The non-matching tail of the tree never sees a publication.
#[test]
fn forwarding_stops_where_interest_stops() {
    // Star: subscriber under leaf 1; publications from leaf 2 must reach
    // leaf 1 via the hub 0 but never touch leaf 3.
    let mut fabric =
        OverlayFabric::build(Topology::star(4), FabricConfig::attested(43)).expect("build");
    fabric.subscribe(1, ClientId(9), &SubscriptionSpec::new().gt("price", 0.0)).unwrap();
    fabric.reset_counters();
    let deliveries = fabric.publish(2, &[PublicationSpec::new().attr("price", 5.0)]).unwrap();
    assert_eq!(deliveries, vec![Delivery { router: 1, client: ClientId(9), publication: 0 }]);
    let stats = fabric.broker_stats();
    assert_eq!(stats[3].ecalls, 0, "leaf 3 has no interest and sees no traffic");
    assert!(stats[0].ecalls > 0 && stats[1].ecalls > 0 && stats[2].ecalls > 0);
}

/// Batches stay batches across hops: 10 publications forwarded over 3
/// links cost one crossing per hop, not one per message per hop.
#[test]
fn batches_amortise_crossings_across_hops() {
    let mut fabric =
        OverlayFabric::build(Topology::line(4), FabricConfig::attested(44)).expect("build");
    fabric.subscribe(0, ClientId(1), &SubscriptionSpec::new().gt("price", 0.0)).unwrap();
    fabric.reset_counters();
    let publications: Vec<PublicationSpec> =
        (0..10).map(|i| PublicationSpec::new().attr("price", 1.0 + i as f64)).collect();
    let deliveries = fabric.publish(3, &publications).unwrap();
    assert_eq!(deliveries.len(), 10);
    // 4 brokers each matched the whole batch once.
    assert_eq!(fabric.total_ecalls(), 4, "one crossing per hop for the whole batch");
}

/// Covering-pruned propagation: downstream brokers hold only the covering
/// subscription, yet delivery stays exact.
#[test]
fn pruning_shrinks_upstream_state() {
    let mut fabric =
        OverlayFabric::build(Topology::line(3), FabricConfig::attested(45)).expect("build");
    fabric.subscribe(0, ClientId(1), &SubscriptionSpec::new().ge("price", 0.0)).unwrap();
    for i in 0..5u64 {
        fabric
            .subscribe(
                0,
                ClientId(10 + i),
                &SubscriptionSpec::new().ge("price", 10.0 * (i + 1) as f64),
            )
            .unwrap();
    }
    // 6 subscriptions at the edge; only the covering one propagated. The
    // covered ones are pruned at router 0 and never even reach router 1,
    // so the pruning happens exactly once per subscription.
    assert_eq!(fabric.total_forwarded(), 2, "one forward per link of the chain");
    assert_eq!(fabric.total_pruned(), 5, "five subs pruned at the first hop");
    let stats = fabric.broker_stats();
    assert_eq!(stats[0].subscriptions, 6);
    assert_eq!(stats[1].subscriptions, 1);
    assert_eq!(stats[2].subscriptions, 1);
    let deliveries = fabric.publish(2, &[PublicationSpec::new().attr("price", 35.0)]).unwrap();
    let clients: Vec<u64> = deliveries.iter().map(|d| d.client.0).collect();
    assert_eq!(clients, vec![1, 10, 11, 12], "price=35 matches thresholds 0,10,20,30");
}

/// Link establishment refuses a router whose quote fails the
/// `require_mr_enclave` policy — a tampered routing binary cannot join
/// the overlay.
#[test]
fn link_establishment_rejects_wrong_measurement() {
    let mut rng = scbr_crypto::rng::CryptoRng::from_seed(1000);
    let producer = scbr::protocol::keys::ProducerCrypto::generate(512, &mut rng).unwrap();
    let mut genuine =
        Broker::attested(0, 1000, IndexKind::Poset, ROUTER_ENCLAVE_CODE, false).unwrap();
    let mut tampered =
        Broker::attested(1, 1001, IndexKind::Poset, b"routing engine + backdoor", false).unwrap();
    let mut service = AttestationService::new();
    service.trust_platform(genuine.platform().unwrap().attestation_public_key().clone());
    service.trust_platform(tampered.platform().unwrap().attestation_public_key().clone());
    let policy = VerifierPolicy::require_mr_enclave(router_measurement());
    let lax =
        VerifierPolicy { mr_enclave: None, mr_signer: None, min_isv_svn: 0, allow_debug: true };
    genuine.set_neighbors(&[1]);
    tampered.set_neighbors(&[0]);
    genuine.configure_trust(service.clone(), policy.clone());
    // The adversary runs its own lax verifier — its checks are not what
    // protects the overlay.
    tampered.configure_trust(service.clone(), lax.clone());
    genuine.provision_attested(&service, &policy, &producer, &mut rng).unwrap();
    // The producer would never provision the tampered broker; the
    // adversary provisions it itself, lax about its own measurement.
    tampered.provision_attested(&service, &lax, &producer, &mut rng).unwrap();

    // Tampered initiator: the genuine responder refuses the hello.
    // (Lifecycle: the tampered broker initiates toward the lower id on
    // its rejoin path; here we lift its hello frame directly.)
    let hello = {
        // Force the tampered broker to initiate: crash + restart makes it
        // re-key every incident link regardless of id order.
        tampered.step(0, Input::Crash).unwrap();
        tampered.step(1, Input::Restart { dead_links: vec![] }).unwrap();
        tampered.provision_attested(&service, &lax, &producer, &mut rng).unwrap();
        let outs = tampered.step(2, Input::Tick).unwrap();
        out_frames(&outs).into_iter().find(|f| f.to == 0).expect("tampered broker initiates")
    };
    let result = genuine.step(3, Input::Frame { from: 1, bytes: hello.bytes });
    assert!(
        matches!(
            result,
            Err(OverlayError::Sgx(SgxError::AttestationFailed { reason: "unexpected mrenclave" }))
        ),
        "got {result:?}"
    );

    // Tampered responder: the genuine initiator refuses at the accept,
    // even though the responder skipped its own policy check.
    let outs = genuine.step(4, Input::Tick).unwrap();
    let hello = out_frames(&outs).into_iter().find(|f| f.to == 1).expect("genuine initiates");
    let outs = tampered.step(5, Input::Frame { from: 0, bytes: hello.bytes }).unwrap();
    let accept = out_frames(&outs).into_iter().next().expect("lax responder accepts");
    let result = genuine.step(6, Input::Frame { from: 1, bytes: accept.bytes });
    assert!(matches!(
        result,
        Err(OverlayError::Sgx(SgxError::AttestationFailed { reason: "unexpected mrenclave" }))
    ));
}

/// A quote from an untrusted platform (an emulator, say) is refused even
/// when the measurement matches.
#[test]
fn link_establishment_rejects_untrusted_platform() {
    let mut rng = scbr_crypto::rng::CryptoRng::from_seed(1002);
    let producer = scbr::protocol::keys::ProducerCrypto::generate(512, &mut rng).unwrap();
    let mut genuine =
        Broker::attested(0, 1002, IndexKind::Poset, ROUTER_ENCLAVE_CODE, false).unwrap();
    let mut emulated =
        Broker::attested(1, 1003, IndexKind::Poset, ROUTER_ENCLAVE_CODE, false).unwrap();
    // Only the genuine broker's platform is trusted by honest verifiers;
    // the emulator's own service naturally trusts itself.
    let mut service = AttestationService::new();
    service.trust_platform(genuine.platform().unwrap().attestation_public_key().clone());
    let mut rogue_service = AttestationService::new();
    rogue_service.trust_platform(emulated.platform().unwrap().attestation_public_key().clone());
    // The adversary's verifier happily trusts the genuine platform too —
    // its laxness is not what protects the overlay.
    rogue_service.trust_platform(genuine.platform().unwrap().attestation_public_key().clone());
    let policy = VerifierPolicy::require_mr_enclave(router_measurement());
    genuine.set_neighbors(&[1]);
    emulated.set_neighbors(&[0]);
    genuine.configure_trust(service.clone(), policy.clone());
    emulated.configure_trust(rogue_service.clone(), policy.clone());
    genuine.provision_attested(&service, &policy, &producer, &mut rng).unwrap();
    emulated.provision_attested(&rogue_service, &policy, &producer, &mut rng).unwrap();
    let outs = genuine.step(0, Input::Tick).unwrap();
    let hello = out_frames(&outs).into_iter().find(|f| f.to == 1).expect("genuine initiates");
    // The emulated responder happily accepts (its rogue service trusts
    // it) — but the genuine initiator refuses the responder's quote.
    let outs = emulated.step(1, Input::Frame { from: 0, bytes: hello.bytes }).unwrap();
    let accept = out_frames(&outs).into_iter().next().expect("emulated responder accepts");
    assert!(genuine.step(2, Input::Frame { from: 1, bytes: accept.bytes }).is_err());
}

/// Sealed links reject tampered frames end to end.
#[test]
fn tampered_link_frames_are_refused() {
    let mut rng = scbr_crypto::rng::CryptoRng::from_seed(99);
    let producer = scbr::protocol::keys::ProducerCrypto::generate(512, &mut rng).unwrap();
    let item = scbr::protocol::messages::PublishItem {
        header_ct: producer.encrypt_header(&PublicationSpec::new().attr("price", 1.0), &mut rng),
        epoch: scbr::ids::KeyEpoch(0),
        payload_ct: vec![0, 0, 0, 0],
    };
    // Two attested brokers with an established sealed link; flip one
    // ciphertext bit in a forwarded frame and watch it bounce.
    let mut a = Broker::attested(0, 1004, IndexKind::Poset, ROUTER_ENCLAVE_CODE, false).unwrap();
    let mut b = Broker::attested(1, 1005, IndexKind::Poset, ROUTER_ENCLAVE_CODE, false).unwrap();
    let mut service = AttestationService::new();
    service.trust_platform(a.platform().unwrap().attestation_public_key().clone());
    service.trust_platform(b.platform().unwrap().attestation_public_key().clone());
    let policy = VerifierPolicy::require_mr_enclave(router_measurement());
    a.set_neighbors(&[1]);
    b.set_neighbors(&[0]);
    a.configure_trust(service.clone(), policy.clone());
    b.configure_trust(service.clone(), policy.clone());
    a.provision_attested(&service, &policy, &producer, &mut rng).unwrap();
    b.provision_attested(&service, &policy, &producer, &mut rng).unwrap();
    // One tick: a (lower id) initiates; drive the handshake to both ends.
    let outs = a.step(0, Input::Tick).unwrap();
    drive(&mut a, &mut b, outs).unwrap();
    assert_eq!(a.lifecycle(), Lifecycle::Serving);
    assert_eq!(b.lifecycle(), Lifecycle::Serving);

    let envelope = producer
        .seal_registration(
            &SubscriptionSpec::new().gt("price", 0.0),
            scbr::ids::SubscriptionId(0),
            ClientId(1),
            &mut rng,
        )
        .unwrap();
    let outs = a.step(1, Input::Subscribe { envelope }).unwrap();
    drive(&mut a, &mut b, outs).unwrap();
    let outs = b
        .step(2, Input::Publish { items: vec![item], trace: scbr_overlay::TraceId::NONE })
        .unwrap();
    let frames = out_frames(&outs);
    assert_eq!(frames.len(), 1);
    let mut bytes = frames[0].bytes.clone();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 1;
    assert!(a.step(3, Input::Frame { from: 1, bytes }).is_err(), "tampered frame must not open");
    // The untampered frame still routes.
    let deliveries = drive(&mut a, &mut b, vec![Output::Frame(frames[0].clone())]).unwrap();
    assert_eq!(deliveries.len(), 1);
}

/// All three index kinds route identically through the overlay.
#[test]
fn index_kinds_agree_on_overlay_routing() {
    let mut reference: Option<Vec<Delivery>> = None;
    for kind in [IndexKind::Poset, IndexKind::Counting, IndexKind::Naive] {
        let config = FabricConfig { index: kind, ..FabricConfig::preshared(47) };
        let mut fabric = OverlayFabric::build(Topology::line(3), config).unwrap();
        fabric.subscribe(0, ClientId(1), &SubscriptionSpec::new().gt("price", 10.0)).unwrap();
        fabric.subscribe(2, ClientId(2), &SubscriptionSpec::new().eq("symbol", "HAL")).unwrap();
        let deliveries = fabric
            .publish(
                1,
                &[
                    PublicationSpec::new().attr("price", 20.0).attr("symbol", "HAL"),
                    PublicationSpec::new().attr("price", 1.0).attr("symbol", "HAL"),
                ],
            )
            .unwrap();
        match &reference {
            None => reference = Some(deliveries),
            Some(expected) => assert_eq!(&deliveries, expected, "{kind:?} disagrees"),
        }
    }
}

/// The full production liveness path, end to end on an *attested*
/// chain: SK provisioning, mutual-quote links, sealed heartbeats — then
/// a middle broker dies silently and the detection loop alone fences
/// it, re-attests it, re-keys every incident link through fresh
/// mutual-quote handshakes, replays, and returns it to `Serving`.
/// Delivery across the healed hop is exact, with zero operator calls.
#[test]
fn attested_chain_detects_and_heals_a_silent_crash() {
    let mut fabric = OverlayFabric::build(
        Topology::line(3),
        FabricConfig::attested(49).with_heartbeats(scbr_overlay::HeartbeatConfig::fast()),
    )
    .expect("attested build");
    fabric.subscribe(0, ClientId(1), &SubscriptionSpec::new().gt("price", 10.0)).unwrap();
    fabric.subscribe(2, ClientId(2), &SubscriptionSpec::new().eq("symbol", "HAL")).unwrap();

    fabric.crash(1).unwrap();
    let rejoins = fabric.run_detection(64).expect("attested detection settles");
    assert_eq!(rejoins.len(), 1);
    assert_eq!(rejoins[0].router, 1);
    assert_eq!(fabric.lifecycle(1), Lifecycle::Serving);
    assert!(fabric.settled());

    let deliveries = fabric
        .publish(
            1,
            &[
                PublicationSpec::new().attr("price", 20.0).attr("symbol", "HAL"),
                PublicationSpec::new().attr("price", 1.0).attr("symbol", "other"),
            ],
        )
        .unwrap();
    assert_eq!(
        deliveries,
        vec![
            Delivery { router: 0, client: ClientId(1), publication: 0 },
            Delivery { router: 2, client: ClientId(2), publication: 0 },
        ]
    );
}
