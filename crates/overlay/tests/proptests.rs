//! Property: covering-pruned subscription propagation is
//! **delivery-equivalent** to flooding every subscription to every
//! router.
//!
//! Pruning is a pure traffic optimisation: a subscription withheld from a
//! link because a broader one already crossed it must never change which
//! edge clients receive which publications — the broader interest pulls
//! the publications to the pruning router, whose local index finishes the
//! job. These properties drive random subscription sets over random
//! trees, publish random batches from random routers, and require the
//! pruned and flooded fabrics to produce identical delivery sets for all
//! three index kinds — plus a single-router oracle check: the overlay
//! delivers exactly what one big router would.

use proptest::prelude::*;
use scbr::engine::MatchingEngine;
use scbr::ids::{ClientId, SubscriptionId};
use scbr::index::IndexKind;
use scbr::protocol::keys::ProducerCrypto;
use scbr::publication::PublicationSpec;
use scbr::subscription::SubscriptionSpec;
use scbr_crypto::rng::CryptoRng;
use scbr_overlay::fabric::{FabricConfig, OverlayFabric, Propagation};
use scbr_overlay::{Delivery, Topology};
use sgx_sim::{CacheConfig, CostModel, MemorySim};

const SYMBOLS: [&str; 3] = ["HAL", "IBM", "AMD"];
const NUMERIC: [&str; 2] = ["price", "volume"];

/// A generated subscription plus its edge-router placement.
#[derive(Debug, Clone)]
struct RawSub {
    router: usize,
    symbol: Option<usize>,
    bounds: Vec<(usize, u8, u8)>,
}

fn sub_strategy() -> impl Strategy<Value = RawSub> {
    (
        0usize..64,
        proptest::option::of(0usize..SYMBOLS.len()),
        // Discrete bounds so covering chains (and hence pruning) are
        // frequent, not accidental.
        proptest::collection::vec((0usize..NUMERIC.len(), 0u8..4, 0u8..8), 0..3),
    )
        .prop_map(|(router, symbol, bounds)| RawSub { router, symbol, bounds })
}

fn build_sub(raw: &RawSub) -> SubscriptionSpec {
    let mut spec = SubscriptionSpec::new();
    if let Some(s) = raw.symbol {
        spec = spec.eq("symbol", SYMBOLS[s]);
    }
    let mut used = std::collections::HashSet::new();
    for (attr, op, bound) in &raw.bounds {
        if !used.insert(*attr) {
            continue; // one predicate per attribute avoids contradictions
        }
        let name = NUMERIC[*attr];
        let value = *bound as f64;
        spec = match op {
            0 => spec.lt(name, value),
            1 => spec.le(name, value),
            2 => spec.gt(name, value),
            _ => spec.ge(name, value),
        };
    }
    spec
}

/// A generated publication header on the same discrete grid.
#[derive(Debug, Clone)]
struct RawPub {
    symbol: usize,
    values: Vec<u8>,
}

fn pub_strategy() -> impl Strategy<Value = RawPub> {
    (0usize..SYMBOLS.len(), proptest::collection::vec(0u8..9, NUMERIC.len()))
        .prop_map(|(symbol, values)| RawPub { symbol, values })
}

fn build_pub(raw: &RawPub) -> PublicationSpec {
    let mut spec = PublicationSpec::new().attr("symbol", SYMBOLS[raw.symbol]);
    for (i, v) in raw.values.iter().enumerate() {
        spec = spec.attr(NUMERIC[i], *v as f64);
    }
    spec
}

/// Builds a random tree from parent choices: router `i`'s parent is
/// `parents[i-1] % i`, guaranteeing acyclicity and connectivity.
fn build_tree(parents: &[usize]) -> Topology {
    let n = parents.len() + 1;
    let edges: Vec<(usize, usize)> =
        parents.iter().enumerate().map(|(i, p)| (p % (i + 1), i + 1)).collect();
    Topology::tree(n, &edges).expect("parent construction always yields a tree")
}

/// One producer identity for the whole property run: RSA key generation
/// dominates fabric construction and is orthogonal to the property.
fn shared_producer() -> ProducerCrypto {
    static PRODUCER: std::sync::OnceLock<ProducerCrypto> = std::sync::OnceLock::new();
    PRODUCER
        .get_or_init(|| {
            ProducerCrypto::generate(512, &mut CryptoRng::from_seed(0x70726f70))
                .expect("producer keys")
        })
        .clone()
}

/// Runs one fabric end to end and returns the sorted delivery set.
fn run_fabric(
    topology: &Topology,
    kind: IndexKind,
    propagation: Propagation,
    seed: u64,
    subs: &[RawSub],
    pubs: &[PublicationSpec],
    publish_at: usize,
) -> (Vec<Delivery>, OverlayFabric) {
    let config = FabricConfig { index: kind, propagation, ..FabricConfig::preshared(seed) };
    let mut fabric =
        OverlayFabric::build_with_producer(topology.clone(), config, shared_producer())
            .expect("fabric build");
    for (i, raw) in subs.iter().enumerate() {
        let at = raw.router % topology.routers();
        fabric
            .subscribe(at, ClientId(i as u64), &build_sub(raw))
            .expect("generated subscriptions register");
    }
    let deliveries = fabric.publish(publish_at, pubs).expect("publish routes");
    (deliveries, fabric)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Pruned ≡ flooded for every index kind, over random trees, random
    /// subscriptions and random publication batches.
    #[test]
    fn pruned_propagation_is_delivery_equivalent_to_flooding(
        parents in proptest::collection::vec(0usize..8, 1..5),
        subs in proptest::collection::vec(sub_strategy(), 0..12),
        pubs in proptest::collection::vec(pub_strategy(), 1..6),
        publish_router in 0usize..64,
        seed in 0u64..1_000,
    ) {
        let topology = build_tree(&parents);
        let publish_at = publish_router % topology.routers();
        let publications: Vec<PublicationSpec> = pubs.iter().map(build_pub).collect();

        for kind in [IndexKind::Poset, IndexKind::Counting, IndexKind::Naive] {
            let (pruned, pruned_fabric) = run_fabric(
                &topology, kind, Propagation::CoveringPruned,
                seed, &subs, &publications, publish_at,
            );
            let (flooded, flooded_fabric) = run_fabric(
                &topology, kind, Propagation::Flood,
                seed, &subs, &publications, publish_at,
            );
            prop_assert_eq!(
                &pruned, &flooded,
                "pruned and flooded fabrics disagree for {:?}", kind
            );
            // Pruning never *increases* propagation traffic or state.
            prop_assert!(
                pruned_fabric.total_forwarded() <= flooded_fabric.total_forwarded(),
                "pruning must not forward more than flooding"
            );
            prop_assert!(
                pruned_fabric.total_index_entries() <= flooded_fabric.total_index_entries(),
                "pruning must not store more than flooding"
            );
        }
    }

    /// The overlay (pruned, multi-hop) delivers exactly what a single
    /// big router holding every subscription would.
    #[test]
    fn overlay_matches_single_router_oracle(
        parents in proptest::collection::vec(0usize..8, 1..4),
        subs in proptest::collection::vec(sub_strategy(), 0..10),
        pubs in proptest::collection::vec(pub_strategy(), 1..5),
        publish_router in 0usize..64,
        seed in 0u64..1_000,
    ) {
        let topology = build_tree(&parents);
        let publish_at = publish_router % topology.routers();
        let publications: Vec<PublicationSpec> = pubs.iter().map(build_pub).collect();
        let (deliveries, _) = run_fabric(
            &topology, IndexKind::Poset, Propagation::CoveringPruned,
            seed, &subs, &publications, publish_at,
        );

        // Oracle: one flat engine with every subscription.
        let mem = MemorySim::native(CacheConfig::default(), CostModel::free());
        let mut oracle = MatchingEngine::new(&mem, IndexKind::Naive);
        for (i, raw) in subs.iter().enumerate() {
            oracle
                .register_plain(SubscriptionId(i as u64), ClientId(i as u64), &build_sub(raw))
                .expect("oracle registration");
        }
        let mut expected: Vec<Delivery> = Vec::new();
        for (p, publication) in publications.iter().enumerate() {
            for client in oracle.match_plain(publication).expect("oracle match") {
                let raw = &subs[client.0 as usize];
                expected.push(Delivery {
                    router: raw.router % topology.routers(),
                    client,
                    publication: p,
                });
            }
        }
        expected.sort_unstable();
        prop_assert_eq!(deliveries, expected, "overlay disagrees with the flat oracle");
    }
}
