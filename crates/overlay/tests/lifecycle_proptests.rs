//! Property: the **full subscription lifecycle** — random interleavings
//! of subscribe and unsubscribe over random trees — keeps the overlay
//! delivery-equivalent to a flat single-router oracle *after every step*,
//! in both covering-pruned and flooded propagation modes.
//!
//! Unsubscription is where the covering optimisation gets dangerous: a
//! removal may *uncover* subscriptions that were pruned behind it, and
//! forgetting to re-forward them silently under-delivers, while
//! re-forwarding too eagerly leaks table rows. These properties pin both
//! failure modes:
//!
//! * after every subscribe/unsubscribe, a probe publication batch is
//!   routed through the pruned fabric, the flooded fabric and a flat
//!   oracle engine, and all three delivery sets must be identical;
//! * when the script ends, every remaining subscription is removed and
//!   every broker's index and every per-link forwarding table must be
//!   **empty** — no leaked entries, no leaked rows;
//! * throughout, each broker's counters satisfy
//!   `rows == forwarded_total − removed` with `uncovered ⊆ forwarded_total`.

use proptest::prelude::*;
use scbr::engine::MatchingEngine;
use scbr::ids::{ClientId, SubscriptionId};
use scbr::index::IndexKind;
use scbr::protocol::keys::ProducerCrypto;
use scbr::publication::PublicationSpec;
use scbr::subscription::SubscriptionSpec;
use scbr_crypto::rng::CryptoRng;
use scbr_overlay::fabric::{FabricConfig, OverlayFabric, Propagation};
use scbr_overlay::{Delivery, HeartbeatConfig, PartitionConfig, Topology};
use sgx_sim::{CacheConfig, CostModel, MemorySim};

const SYMBOLS: [&str; 3] = ["HAL", "IBM", "AMD"];
const NUMERIC: [&str; 2] = ["price", "volume"];

/// A generated subscription plus its edge-router placement.
#[derive(Debug, Clone)]
struct RawSub {
    router: usize,
    symbol: Option<usize>,
    bounds: Vec<(usize, u8, u8)>,
}

fn sub_strategy() -> impl Strategy<Value = RawSub> {
    (
        0usize..64,
        proptest::option::of(0usize..SYMBOLS.len()),
        // Discrete bounds so covering chains (and hence pruning and
        // *uncovering*) are frequent, not accidental.
        proptest::collection::vec((0usize..NUMERIC.len(), 0u8..4, 0u8..8), 0..3),
    )
        .prop_map(|(router, symbol, bounds)| RawSub { router, symbol, bounds })
}

fn build_sub(raw: &RawSub) -> SubscriptionSpec {
    let mut spec = SubscriptionSpec::new();
    if let Some(s) = raw.symbol {
        spec = spec.eq("symbol", SYMBOLS[s]);
    }
    let mut used = std::collections::HashSet::new();
    for (attr, op, bound) in &raw.bounds {
        if !used.insert(*attr) {
            continue; // one predicate per attribute avoids contradictions
        }
        let name = NUMERIC[*attr];
        let value = *bound as f64;
        spec = match op {
            0 => spec.lt(name, value),
            1 => spec.le(name, value),
            2 => spec.gt(name, value),
            _ => spec.ge(name, value),
        };
    }
    spec
}

/// A generated probe publication on the same discrete grid.
#[derive(Debug, Clone)]
struct RawPub {
    symbol: usize,
    values: Vec<u8>,
}

fn pub_strategy() -> impl Strategy<Value = RawPub> {
    (0usize..SYMBOLS.len(), proptest::collection::vec(0u8..9, NUMERIC.len()))
        .prop_map(|(symbol, values)| RawPub { symbol, values })
}

fn build_pub(raw: &RawPub) -> PublicationSpec {
    let mut spec = PublicationSpec::new().attr("symbol", SYMBOLS[raw.symbol]);
    for (i, v) in raw.values.iter().enumerate() {
        spec = spec.attr(NUMERIC[i], *v as f64);
    }
    spec
}

/// Builds a random tree from parent choices: router `i`'s parent is
/// `parents[i-1] % i`, guaranteeing acyclicity and connectivity.
fn build_tree(parents: &[usize]) -> Topology {
    let n = parents.len() + 1;
    let edges: Vec<(usize, usize)> =
        parents.iter().enumerate().map(|(i, p)| (p % (i + 1), i + 1)).collect();
    Topology::tree(n, &edges).expect("parent construction always yields a tree")
}

/// One producer identity for the whole property run: RSA key generation
/// dominates fabric construction and is orthogonal to the property.
fn shared_producer() -> ProducerCrypto {
    static PRODUCER: std::sync::OnceLock<ProducerCrypto> = std::sync::OnceLock::new();
    PRODUCER
        .get_or_init(|| {
            ProducerCrypto::generate(512, &mut CryptoRng::from_seed(0x6c696665))
                .expect("producer keys")
        })
        .clone()
}

/// One lifecycle step, decoded from the generated script.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// Subscribe the next not-yet-subscribed generated subscription.
    Subscribe,
    /// Unsubscribe the `pick % live`-th live subscription.
    Unsubscribe(usize),
}

/// Decodes the raw script into concrete steps against the generated
/// subscription pool, ending with the removal of everything still live.
fn decode_script(script: &[(bool, usize)], total_subs: usize) -> Vec<Step> {
    let mut steps = Vec::new();
    let mut pending = total_subs;
    let mut live = 0usize;
    for &(subscribe, pick) in script {
        if subscribe && pending > 0 {
            steps.push(Step::Subscribe);
            pending -= 1;
            live += 1;
        } else if !subscribe && live > 0 {
            steps.push(Step::Unsubscribe(pick));
            live -= 1;
        }
    }
    // Drain everything so the final emptiness check always runs.
    while pending > 0 {
        steps.push(Step::Subscribe);
        pending -= 1;
        live += 1;
    }
    while live > 0 {
        steps.push(Step::Unsubscribe(0));
        live -= 1;
    }
    steps
}

/// Asserts the per-broker churn-counter invariant.
fn assert_counters(fabric: &OverlayFabric, ctx: &str) -> Result<(), TestCaseError> {
    for stats in fabric.broker_stats() {
        prop_assert_eq!(
            stats.forwarded,
            stats.forwarded_total - stats.removed,
            "rows != forwarded_total - removed at router {} ({})",
            stats.router,
            ctx
        );
        prop_assert!(
            stats.uncovered <= stats.forwarded_total,
            "uncovered exceeds forwarded_total at router {} ({})",
            stats.router,
            ctx
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// After every subscribe/unsubscribe step, pruned ≡ flooded ≡ flat
    /// oracle; after the final step, every broker is completely drained.
    #[test]
    fn lifecycle_interleavings_stay_oracle_equivalent(
        parents in proptest::collection::vec(0usize..8, 1..5),
        subs in proptest::collection::vec(sub_strategy(), 1..8),
        script in proptest::collection::vec((any::<bool>(), 0usize..16), 0..16),
        pubs in proptest::collection::vec(pub_strategy(), 1..3),
        publish_router in 0usize..64,
        seed in 0u64..1_000,
    ) {
        let topology = build_tree(&parents);
        let routers = topology.routers();
        let publish_at = publish_router % routers;
        let publications: Vec<PublicationSpec> = pubs.iter().map(build_pub).collect();
        let steps = decode_script(&script, subs.len());

        let producer = shared_producer();
        let mut pruned = OverlayFabric::build_with_producer(
            topology.clone(),
            FabricConfig { index: IndexKind::Poset, ..FabricConfig::preshared(seed) },
            producer.clone(),
        ).expect("pruned fabric");
        let mut flooded = OverlayFabric::build_with_producer(
            topology.clone(),
            FabricConfig {
                index: IndexKind::Poset,
                propagation: Propagation::Flood,
                ..FabricConfig::preshared(seed)
            },
            producer.clone(),
        ).expect("flooded fabric");
        // The flat oracle: one big router holding exactly the live set.
        let mem = MemorySim::native(CacheConfig::default(), CostModel::free());
        let mut oracle = MatchingEngine::new(&mem, IndexKind::Naive);

        // id → index into `subs`, for oracle-expectation building.
        let mut live: Vec<(SubscriptionId, usize)> = Vec::new();
        let mut next_sub = 0usize;

        for (step_no, step) in steps.iter().enumerate() {
            match *step {
                Step::Subscribe => {
                    let raw = &subs[next_sub];
                    let at = raw.router % routers;
                    let spec = build_sub(raw);
                    let client = ClientId(next_sub as u64);
                    let id = pruned.subscribe(at, client, &spec).expect("pruned subscribe");
                    let id2 = flooded.subscribe(at, client, &spec).expect("flooded subscribe");
                    prop_assert_eq!(id, id2, "both fabrics allocate ids in lockstep");
                    oracle.register_plain(id, client, &spec).expect("oracle register");
                    live.push((id, next_sub));
                    next_sub += 1;
                }
                Step::Unsubscribe(pick) => {
                    let (id, _) = live.remove(pick % live.len());
                    prop_assert!(pruned.unsubscribe(id).expect("pruned unsubscribe"));
                    prop_assert!(flooded.unsubscribe(id).expect("flooded unsubscribe"));
                    prop_assert!(oracle.unregister(id), "oracle had the subscription");
                }
            }

            // Probe: all three views agree on every delivery.
            let got_pruned = pruned.publish(publish_at, &publications).expect("pruned publish");
            let got_flooded = flooded.publish(publish_at, &publications).expect("flooded publish");
            prop_assert_eq!(
                &got_pruned, &got_flooded,
                "pruned and flooded disagree after step {}", step_no
            );
            let mut expected: Vec<Delivery> = Vec::new();
            for (p, publication) in publications.iter().enumerate() {
                for client in oracle.match_plain(publication).expect("oracle match") {
                    let raw = &subs[client.0 as usize];
                    expected.push(Delivery {
                        router: raw.router % routers,
                        client,
                        publication: p,
                    });
                }
            }
            expected.sort_unstable();
            prop_assert_eq!(
                got_pruned, expected,
                "overlay disagrees with the flat oracle after step {}", step_no
            );
            assert_counters(&pruned, "pruned")?;
            assert_counters(&flooded, "flooded")?;
            // Pruning must never store more than flooding.
            prop_assert!(pruned.total_index_entries() <= flooded.total_index_entries());
        }

        // Everything was removed: state returns to baseline everywhere.
        for fabric in [&pruned, &flooded] {
            prop_assert_eq!(fabric.total_index_entries(), 0, "leaked index entries");
            prop_assert_eq!(fabric.total_forwarded(), 0, "leaked forwarding-table rows");
            for stats in fabric.broker_stats() {
                prop_assert_eq!(stats.subscriptions, 0, "router {} index not empty", stats.router);
            }
        }
    }

    /// Crash/rejoin arm: random crash points interleaved with sub/unsub
    /// churn stay delivery-equivalent to the flat oracle. A broker may
    /// crash at any point; while it is down, churn continues at the
    /// surviving brokers (frames toward the crashed one are dropped on
    /// the floor). After the rejoin — sealed restore + neighbour replay +
    /// stale-subscription reconciliation — the overlay must again
    /// deliver exactly what the flat oracle delivers, and at the end a
    /// fully drained fabric holds zero state.
    #[test]
    fn crash_rejoin_interleavings_stay_oracle_equivalent(
        parents in proptest::collection::vec(0usize..6, 1..5),
        subs in proptest::collection::vec(sub_strategy(), 1..8),
        script in proptest::collection::vec((0u8..4, 0usize..16), 0..20),
        pubs in proptest::collection::vec(pub_strategy(), 1..3),
        publish_router in 0usize..64,
        seed in 0u64..1_000,
    ) {
        let topology = build_tree(&parents);
        let routers = topology.routers();
        let publications: Vec<PublicationSpec> = pubs.iter().map(build_pub).collect();

        let mut fabric = OverlayFabric::build_with_producer(
            topology.clone(),
            FabricConfig { index: IndexKind::Poset, ..FabricConfig::preshared(seed) },
            shared_producer(),
        ).expect("fabric");
        let mem = MemorySim::native(CacheConfig::default(), CostModel::free());
        let mut oracle = MatchingEngine::new(&mem, IndexKind::Naive);

        // id → (index into `subs`, actual edge router), for
        // oracle-expectation building; placement may dodge a crashed
        // router, so it is recorded per subscription.
        let mut live: Vec<(SubscriptionId, usize, usize)> = Vec::new();
        let mut next_sub = 0usize;
        let mut crashed: Option<usize> = None;

        let probe = |fabric: &mut OverlayFabric,
                         oracle: &MatchingEngine,
                         live: &[(SubscriptionId, usize, usize)],
                         step_no: usize|
         -> Result<(), TestCaseError> {
            let at = publish_router % routers;
            let got = fabric.publish(at, &publications).expect("probe publish");
            let mut expected: Vec<Delivery> = Vec::new();
            for (p, publication) in publications.iter().enumerate() {
                for client in oracle.match_plain(publication).expect("oracle match") {
                    let &(_, _, placed) = live
                        .iter()
                        .find(|(_, idx, _)| *idx == client.0 as usize)
                        .expect("delivered client is live");
                    expected.push(Delivery { router: placed, client, publication: p });
                }
            }
            expected.sort_unstable();
            prop_assert_eq!(
                got, expected,
                "overlay disagrees with the flat oracle after step {}", step_no
            );
            assert_counters(fabric, "crash-rejoin")?;
            Ok(())
        };

        for (step_no, &(op, pick)) in script.iter().enumerate() {
            match op {
                // Subscribe the next generated subscription at its edge
                // router, dodging a crashed broker.
                0 if next_sub < subs.len() => {
                    let raw = &subs[next_sub];
                    let mut at = raw.router % routers;
                    if Some(at) == crashed {
                        at = (at + 1) % routers;
                    }
                    let client = ClientId(next_sub as u64);
                    let spec = build_sub(raw);
                    let id = fabric.subscribe(at, client, &spec).expect("subscribe");
                    oracle.register_plain(id, client, &spec).expect("oracle register");
                    live.push((id, next_sub, at));
                    next_sub += 1;
                }
                // Unsubscribe a live subscription homed at a live broker.
                1 if !live.is_empty() => {
                    let start = pick % live.len();
                    let Some(offset) = (0..live.len())
                        .find(|o| Some(live[(start + o) % live.len()].2) != crashed)
                    else { continue };
                    let (id, _, _) = live.remove((start + offset) % live.len());
                    prop_assert!(fabric.unsubscribe(id).expect("unsubscribe"));
                    prop_assert!(oracle.unregister(id), "oracle had the subscription");
                }
                // Crash a broker (one at a time).
                2 if crashed.is_none() => {
                    let victim = pick % routers;
                    fabric.crash(victim).expect("crash");
                    crashed = Some(victim);
                }
                // Restart and rejoin.
                3 => {
                    if let Some(victim) = crashed.take() {
                        fabric.restart(victim).expect("restart");
                    }
                }
                _ => {}
            }
            // Probe equivalence whenever the whole fabric is serving.
            if crashed.is_none() {
                probe(&mut fabric, &oracle, &live, step_no)?;
            }
        }

        // Heal, drain, and check for leaks.
        if let Some(victim) = crashed.take() {
            fabric.restart(victim).expect("final restart");
        }
        probe(&mut fabric, &oracle, &live, usize::MAX)?;
        for (id, _, _) in live.drain(..) {
            prop_assert!(fabric.unsubscribe(id).expect("drain unsubscribe"));
            prop_assert!(oracle.unregister(id));
        }
        prop_assert_eq!(fabric.total_index_entries(), 0, "leaked index entries");
        prop_assert_eq!(fabric.total_forwarded(), 0, "leaked forwarding-table rows");
        for stats in fabric.broker_stats() {
            prop_assert_eq!(stats.subscriptions, 0, "router {} index not empty", stats.router);
        }
    }

    /// Timer-driven recovery arm: random churn, silent crashes (singles
    /// and adjacent pairs), random per-broker tick strides (slow hosts)
    /// and random one-shot heartbeat losses. Nothing ever calls
    /// `restart` — every crash is recovered exclusively by the
    /// detection loop — and after every step the pruned fabric, the
    /// flooded fabric and the flat oracle must agree on every delivery.
    /// Delays and losses alone must never fence anyone, and every
    /// automatic fence must name a genuinely crashed broker.
    #[test]
    fn timer_driven_recovery_stays_oracle_equivalent(
        parents in proptest::collection::vec(0usize..6, 2..5),
        strides in proptest::collection::vec(1u64..4, 5),
        subs in proptest::collection::vec(sub_strategy(), 1..7),
        script in proptest::collection::vec((0u8..5, 0usize..32), 0..12),
        pubs in proptest::collection::vec(pub_strategy(), 1..3),
        (publish_router, seed) in (0usize..64, 0u64..1_000),
    ) {
        let topology = build_tree(&parents);
        let routers = topology.routers();
        let edges: Vec<(usize, usize)> =
            parents.iter().enumerate().map(|(i, p)| (p % (i + 1), i + 1)).collect();
        let publications: Vec<PublicationSpec> = pubs.iter().map(build_pub).collect();
        let publish_at = publish_router % routers;

        let producer = shared_producer();
        let heartbeats = HeartbeatConfig::fast();
        let mut pruned = OverlayFabric::build_with_producer(
            topology.clone(),
            FabricConfig { index: IndexKind::Poset, ..FabricConfig::preshared(seed) }
                .with_heartbeats(heartbeats),
            producer.clone(),
        ).expect("pruned fabric");
        let mut flooded = OverlayFabric::build_with_producer(
            topology.clone(),
            FabricConfig {
                index: IndexKind::Poset,
                propagation: Propagation::Flood,
                ..FabricConfig::preshared(seed)
            }.with_heartbeats(heartbeats),
            producer.clone(),
        ).expect("flooded fabric");
        // Delays: a stride-s broker only sees a timer tick every s-th
        // round. All strides stay under `suspect_after` so a slow host
        // is never silent long enough to be suspected.
        for (r, &s) in strides.iter().take(routers).enumerate() {
            pruned.set_tick_stride(r, s);
            flooded.set_tick_stride(r, s);
        }
        let mem = MemorySim::native(CacheConfig::default(), CostModel::free());
        let mut oracle = MatchingEngine::new(&mem, IndexKind::Naive);

        // id → index into `subs` (placement is always the natural edge
        // router — churn only happens on a fully serving fabric).
        let mut live: Vec<(SubscriptionId, usize)> = Vec::new();
        let mut next_sub = 0usize;

        for (step_no, &(op, pick)) in script.iter().enumerate() {
            match op {
                // Subscribe the next generated subscription.
                0 if next_sub < subs.len() => {
                    let raw = &subs[next_sub];
                    let at = raw.router % routers;
                    let spec = build_sub(raw);
                    let client = ClientId(next_sub as u64);
                    let id = pruned.subscribe(at, client, &spec).expect("pruned subscribe");
                    let id2 = flooded.subscribe(at, client, &spec).expect("flooded subscribe");
                    prop_assert_eq!(id, id2, "both fabrics allocate ids in lockstep");
                    oracle.register_plain(id, client, &spec).expect("oracle register");
                    live.push((id, next_sub));
                    next_sub += 1;
                }
                // Unsubscribe a random live subscription.
                1 if !live.is_empty() => {
                    let (id, _) = live.remove(pick % live.len());
                    prop_assert!(pruned.unsubscribe(id).expect("pruned unsubscribe"));
                    prop_assert!(flooded.unsubscribe(id).expect("flooded unsubscribe"));
                    prop_assert!(oracle.unregister(id), "oracle had the subscription");
                }
                // Silent crash — a single broker (op 2) or an adjacent
                // pair (op 3) — with mid-outage churn, recovered only by
                // the detection loop.
                2 | 3 => {
                    let victim = pick % routers;
                    let mut crashed = vec![victim];
                    if op == 3 && routers > 2 {
                        let nbrs = topology.neighbors(victim);
                        crashed.push(nbrs[pick % nbrs.len()]);
                    }
                    for &v in &crashed {
                        pruned.crash(v).expect("crash pruned");
                        flooded.crash(v).expect("crash flooded");
                    }
                    // Mid-outage churn: remove one subscription homed at
                    // a surviving broker, if any — its removal frames
                    // toward the dead region are dropped and must be
                    // reconciled by the automatic rejoins.
                    if let Some(i) = (0..live.len())
                        .find(|&i| !crashed.contains(&(subs[live[i].1].router % routers)))
                    {
                        let (id, _) = live.remove(i);
                        prop_assert!(pruned.unsubscribe(id).expect("pruned unsubscribe"));
                        prop_assert!(flooded.unsubscribe(id).expect("flooded unsubscribe"));
                        prop_assert!(oracle.unregister(id), "oracle had the subscription");
                    }
                    crashed.sort_unstable();
                    crashed.dedup();
                    for fabric in [&mut pruned, &mut flooded] {
                        let rejoins = fabric.run_detection(128).expect("detection settles");
                        let mut victims: Vec<usize> =
                            rejoins.iter().map(|r| r.router).collect();
                        victims.sort_unstable();
                        prop_assert_eq!(
                            &victims, &crashed,
                            "every fence names a real crash and every crash is fenced \
                             (step {})", step_no
                        );
                    }
                }
                // One-shot heartbeat loss on a random edge direction
                // whose sender ticks every round (a slower sender plus a
                // loss could legitimately look dead).
                4 => {
                    let (a, b) = edges[pick % edges.len()];
                    let (from, to) =
                        if (pick / edges.len()).is_multiple_of(2) { (a, b) } else { (b, a) };
                    if strides.get(from).copied().unwrap_or(1) == 1 {
                        pruned.drop_next_frame(from, to);
                        flooded.drop_next_frame(from, to);
                    }
                    for fabric in [&mut pruned, &mut flooded] {
                        for _ in 0..3 {
                            let rejoins = fabric.tick_round().expect("tick round");
                            prop_assert!(
                                rejoins.is_empty(),
                                "a lost heartbeat must never fence an alive broker \
                                 (step {})", step_no
                            );
                        }
                        prop_assert!(
                            fabric.settled(),
                            "loss absorbed with no recovery work outstanding (step {})",
                            step_no
                        );
                    }
                }
                _ => {}
            }

            // Probe: pruned ≡ flooded ≡ flat oracle after every step.
            let got_pruned = pruned.publish(publish_at, &publications).expect("pruned publish");
            let got_flooded =
                flooded.publish(publish_at, &publications).expect("flooded publish");
            prop_assert_eq!(
                &got_pruned, &got_flooded,
                "pruned and flooded disagree after step {}", step_no
            );
            let mut expected: Vec<Delivery> = Vec::new();
            for (p, publication) in publications.iter().enumerate() {
                for client in oracle.match_plain(publication).expect("oracle match") {
                    let raw = &subs[client.0 as usize];
                    expected.push(Delivery {
                        router: raw.router % routers,
                        client,
                        publication: p,
                    });
                }
            }
            expected.sort_unstable();
            prop_assert_eq!(
                got_pruned, expected,
                "overlay disagrees with the flat oracle after step {}", step_no
            );
            assert_counters(&pruned, "pruned")?;
            assert_counters(&flooded, "flooded")?;
        }

        // Drain everything: recovery left no leaked rows behind.
        for (id, _) in live.drain(..) {
            prop_assert!(pruned.unsubscribe(id).expect("drain pruned"));
            prop_assert!(flooded.unsubscribe(id).expect("drain flooded"));
            prop_assert!(oracle.unregister(id));
        }
        for fabric in [&pruned, &flooded] {
            prop_assert_eq!(fabric.total_index_entries(), 0, "leaked index entries");
            prop_assert_eq!(fabric.total_forwarded(), 0, "leaked forwarding-table rows");
        }
    }

    /// Telemetry arm: an **instrumented** fabric (stage histograms, hop
    /// tracing, trace ids on every batch) must be behaviourally
    /// indistinguishable from an uninstrumented twin across the whole
    /// lifecycle — identical delivery sets, identical forwarding-table
    /// rows, identical index occupancy, through churn and a crash/rejoin.
    /// Observation must never steer routing.
    #[test]
    fn instrumented_fabric_is_behaviourally_identical(
        parents in proptest::collection::vec(0usize..6, 1..5),
        subs in proptest::collection::vec(sub_strategy(), 1..8),
        script in proptest::collection::vec((0u8..4, 0usize..16), 0..16),
        pubs in proptest::collection::vec(pub_strategy(), 1..3),
        (publish_router, seed) in (0usize..64, 0u64..1_000),
    ) {
        let topology = build_tree(&parents);
        let routers = topology.routers();
        let publish_at = publish_router % routers;
        let publications: Vec<PublicationSpec> = pubs.iter().map(build_pub).collect();

        let producer = shared_producer();
        let config = FabricConfig { index: IndexKind::Poset, ..FabricConfig::preshared(seed) };
        let mut plain = OverlayFabric::build_with_producer(
            topology.clone(),
            config,
            producer.clone(),
        ).expect("uninstrumented fabric");
        let mut instrumented = OverlayFabric::build_with_producer(
            topology.clone(),
            config.with_telemetry(),
            producer.clone(),
        ).expect("instrumented fabric");

        let mut live: Vec<(SubscriptionId, usize)> = Vec::new();
        let mut next_sub = 0usize;
        let mut crashed: Option<usize> = None;

        for (step_no, &(op, pick)) in script.iter().enumerate() {
            match op {
                0 if next_sub < subs.len() => {
                    let raw = &subs[next_sub];
                    let mut at = raw.router % routers;
                    if Some(at) == crashed {
                        at = (at + 1) % routers;
                    }
                    let client = ClientId(next_sub as u64);
                    let spec = build_sub(raw);
                    let id = plain.subscribe(at, client, &spec).expect("plain subscribe");
                    let id2 = instrumented
                        .subscribe(at, client, &spec)
                        .expect("instrumented subscribe");
                    prop_assert_eq!(id, id2, "id allocation in lockstep");
                    live.push((id, at));
                    next_sub += 1;
                }
                1 if !live.is_empty() => {
                    // Unsubscribe a live subscription homed at a live broker.
                    let start = pick % live.len();
                    let Some(offset) = (0..live.len())
                        .find(|o| Some(live[(start + o) % live.len()].1) != crashed)
                    else { continue };
                    let (id, _) = live.remove((start + offset) % live.len());
                    let a = plain.unsubscribe(id).expect("plain unsubscribe");
                    let b = instrumented.unsubscribe(id).expect("instrumented unsubscribe");
                    prop_assert_eq!(a, b, "unsubscribe outcome diverged at step {}", step_no);
                }
                2 if crashed.is_none() => {
                    let victim = pick % routers;
                    plain.crash(victim).expect("plain crash");
                    instrumented.crash(victim).expect("instrumented crash");
                    crashed = Some(victim);
                }
                3 => {
                    if let Some(victim) = crashed.take() {
                        let a = plain.restart(victim).expect("plain restart");
                        let b = instrumented.restart(victim).expect("instrumented restart");
                        prop_assert_eq!(a, b, "rejoin reports diverged at step {}", step_no);
                    }
                }
                _ => {}
            }

            if crashed.is_some() {
                continue; // probe only a fully serving pair
            }
            let got_plain =
                plain.publish(publish_at, &publications).expect("plain publish");
            let (trace, got_instrumented) = instrumented
                .publish_traced(publish_at, &publications)
                .expect("instrumented publish");
            prop_assert!(trace.is_some(), "instrumented batches always carry a trace");
            prop_assert_eq!(
                &got_plain, &got_instrumented,
                "instrumentation changed deliveries at step {}", step_no
            );
            // Structural state marches in lockstep too.
            prop_assert_eq!(plain.total_index_entries(), instrumented.total_index_entries());
            prop_assert_eq!(plain.total_forwarded(), instrumented.total_forwarded());
            prop_assert_eq!(plain.total_pruned(), instrumented.total_pruned());
            prop_assert_eq!(plain.total_uncovered(), instrumented.total_uncovered());
        }

        // The instrumented fabric actually observed something, and the
        // observations drain without disturbing either fabric.
        if let Some(victim) = crashed.take() {
            plain.restart(victim).expect("final plain restart");
            instrumented.restart(victim).expect("final instrumented restart");
        }
        let snap = instrumented.telemetry();
        prop_assert!(snap.fabric.get("total.ecalls").is_some());
        let got_plain = plain.publish(publish_at, &publications).expect("final plain");
        let got_instrumented =
            instrumented.publish(publish_at, &publications).expect("final instrumented");
        prop_assert_eq!(got_plain, got_instrumented, "post-drain deliveries diverged");
    }

    /// The final-drain guarantee holds for every index kind, not just the
    /// poset (removal goes through `SubscriptionIndex::remove`, whose
    /// implementations differ structurally).
    #[test]
    fn all_index_kinds_drain_to_empty(
        parents in proptest::collection::vec(0usize..4, 1..4),
        subs in proptest::collection::vec(sub_strategy(), 1..6),
        pubs in proptest::collection::vec(pub_strategy(), 1..2),
        seed in 0u64..1_000,
    ) {
        let topology = build_tree(&parents);
        let routers = topology.routers();
        let publications: Vec<PublicationSpec> = pubs.iter().map(build_pub).collect();
        for kind in [IndexKind::Poset, IndexKind::Counting, IndexKind::Naive] {
            let mut fabric = OverlayFabric::build_with_producer(
                topology.clone(),
                FabricConfig { index: kind, ..FabricConfig::preshared(seed) },
                shared_producer(),
            ).expect("fabric");
            let mut ids = Vec::new();
            for (i, raw) in subs.iter().enumerate() {
                let at = raw.router % routers;
                ids.push(
                    fabric
                        .subscribe(at, ClientId(i as u64), &build_sub(raw))
                        .expect("subscribe"),
                );
            }
            // Remove the first half, publish, remove the rest.
            let half = ids.len() / 2;
            for id in &ids[..half] {
                prop_assert!(fabric.unsubscribe(*id).expect("unsubscribe"));
            }
            // Deliveries reflect only the surviving half.
            let deliveries = fabric.publish(0, &publications).expect("publish");
            for d in &deliveries {
                prop_assert!(
                    (d.client.0 as usize) >= half,
                    "removed subscription still delivering under {:?}", kind
                );
            }
            for id in &ids[half..] {
                prop_assert!(fabric.unsubscribe(*id).expect("unsubscribe rest"));
            }
            prop_assert_eq!(fabric.total_index_entries(), 0, "{:?} leaked entries", kind);
            prop_assert_eq!(fabric.total_forwarded(), 0, "{:?} leaked rows", kind);
        }
    }

    /// Partitioned-matcher arm: a fabric whose brokers shard their
    /// matcher into 3 slices (with an aggressive skew threshold, so the
    /// auto-rebalancer and forced rebalances actually migrate) must stay
    /// delivery-equivalent to an unpartitioned twin and the flat oracle
    /// through random churn, forced migration passes, and a crash/rejoin
    /// landing right after migrations — the sealed per-slice assignment
    /// must restore into exactly-once delivery.
    #[test]
    fn partitioned_fabric_stays_oracle_equivalent(
        parents in proptest::collection::vec(0usize..6, 1..5),
        subs in proptest::collection::vec(sub_strategy(), 1..8),
        script in proptest::collection::vec((0u8..5, 0usize..16), 0..20),
        pubs in proptest::collection::vec(pub_strategy(), 1..3),
        (publish_router, seed) in (0usize..64, 0u64..1_000),
    ) {
        let topology = build_tree(&parents);
        let routers = topology.routers();
        let publications: Vec<PublicationSpec> = pubs.iter().map(build_pub).collect();
        let publish_at = publish_router % routers;

        let producer = shared_producer();
        let config = FabricConfig { index: IndexKind::Poset, ..FabricConfig::preshared(seed) };
        let mut flat = OverlayFabric::build_with_producer(
            topology.clone(),
            config,
            producer.clone(),
        ).expect("single-slice fabric");
        let mut sharded = OverlayFabric::build_with_producer(
            topology.clone(),
            config.with_partition(
                PartitionConfig::sliced(3).with_skew_threshold(1.2).with_migration_batch(2),
            ),
            producer.clone(),
        ).expect("partitioned fabric");
        let mem = MemorySim::native(CacheConfig::default(), CostModel::free());
        let mut oracle = MatchingEngine::new(&mem, IndexKind::Naive);

        // id → (index into `subs`, actual edge router): placement dodges
        // a crashed broker, so it is recorded per subscription.
        let mut live: Vec<(SubscriptionId, usize, usize)> = Vec::new();
        let mut next_sub = 0usize;
        let mut crashed: Option<usize> = None;

        for (step_no, &(op, pick)) in script.iter().enumerate() {
            match op {
                0 if next_sub < subs.len() => {
                    let raw = &subs[next_sub];
                    let mut at = raw.router % routers;
                    if Some(at) == crashed {
                        at = (at + 1) % routers;
                    }
                    let client = ClientId(next_sub as u64);
                    let spec = build_sub(raw);
                    let id = flat.subscribe(at, client, &spec).expect("flat subscribe");
                    let id2 = sharded.subscribe(at, client, &spec).expect("sharded subscribe");
                    prop_assert_eq!(id, id2, "both fabrics allocate ids in lockstep");
                    oracle.register_plain(id, client, &spec).expect("oracle register");
                    live.push((id, next_sub, at));
                    next_sub += 1;
                }
                1 if !live.is_empty() => {
                    // Unsubscribe a live subscription homed at a live broker.
                    let start = pick % live.len();
                    let Some(offset) = (0..live.len())
                        .find(|o| Some(live[(start + o) % live.len()].2) != crashed)
                    else { continue };
                    let (id, _, _) = live.remove((start + offset) % live.len());
                    prop_assert!(flat.unsubscribe(id).expect("flat unsubscribe"));
                    prop_assert!(sharded.unsubscribe(id).expect("sharded unsubscribe"));
                    prop_assert!(oracle.unregister(id), "oracle had the subscription");
                }
                // Forced migration pass at a serving broker; a second
                // pass right after must find nothing left to move.
                2 => {
                    let mut at = pick % routers;
                    if Some(at) == crashed {
                        at = (at + 1) % routers;
                    }
                    sharded.rebalance(at).expect("forced rebalance");
                    let again = sharded.rebalance(at).expect("repeat rebalance");
                    prop_assert_eq!(
                        again.migrated, 0,
                        "rebalancing must be idempotent at step {}", step_no
                    );
                }
                // Crash — deliberately *after* whatever migrations the
                // script forced, so rejoin exercises the sealed
                // per-slice assignment.
                3 if crashed.is_none() => {
                    let victim = pick % routers;
                    flat.crash(victim).expect("flat crash");
                    sharded.crash(victim).expect("sharded crash");
                    crashed = Some(victim);
                }
                4 => {
                    if let Some(victim) = crashed.take() {
                        flat.restart(victim).expect("flat restart");
                        sharded.restart(victim).expect("sharded restart");
                    }
                }
                _ => {}
            }

            if crashed.is_some() {
                continue; // probe only a fully serving pair
            }
            let got_flat = flat.publish(publish_at, &publications).expect("flat publish");
            let got_sharded =
                sharded.publish(publish_at, &publications).expect("sharded publish");
            prop_assert_eq!(
                &got_flat, &got_sharded,
                "partitioning changed deliveries at step {}", step_no
            );
            let mut expected: Vec<Delivery> = Vec::new();
            for (p, publication) in publications.iter().enumerate() {
                for client in oracle.match_plain(publication).expect("oracle match") {
                    let &(_, _, placed) = live
                        .iter()
                        .find(|(_, idx, _)| *idx == client.0 as usize)
                        .expect("delivered client is live");
                    expected.push(Delivery { router: placed, client, publication: p });
                }
            }
            expected.sort_unstable();
            prop_assert_eq!(
                got_flat, expected,
                "overlay disagrees with the flat oracle after step {}", step_no
            );
            assert_counters(&sharded, "partitioned")?;
        }

        // Heal, drain, and check for leaks — migrations must not leave
        // duplicate or orphaned slice entries behind.
        if let Some(victim) = crashed.take() {
            flat.restart(victim).expect("final flat restart");
            sharded.restart(victim).expect("final sharded restart");
        }
        for (id, _, _) in live.drain(..) {
            prop_assert!(flat.unsubscribe(id).expect("drain flat"));
            prop_assert!(sharded.unsubscribe(id).expect("drain sharded"));
            prop_assert!(oracle.unregister(id));
        }
        for fabric in [&flat, &sharded] {
            prop_assert_eq!(fabric.total_index_entries(), 0, "leaked index entries");
            prop_assert_eq!(fabric.total_forwarded(), 0, "leaked forwarding-table rows");
            for stats in fabric.broker_stats() {
                prop_assert_eq!(stats.subscriptions, 0, "router {} index not empty", stats.router);
            }
        }
    }
}
