//! Length-prefixed framing over byte streams.
//!
//! Wire format: a 4-byte big-endian length followed by that many payload
//! bytes. Used by the TCP transport; the in-process transport passes frames
//! as owned buffers directly.

use crate::error::NetError;
use std::io::{Read, Write};

/// Maximum accepted frame size (16 MiB), guarding against corrupt length
/// prefixes.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Writes one frame to `w`.
///
/// # Errors
///
/// [`NetError::FrameTooLarge`] if `payload` exceeds [`MAX_FRAME`];
/// [`NetError::Io`] on stream failure.
pub fn write_frame<W: Write>(mut w: W, payload: &[u8]) -> Result<(), NetError> {
    if payload.len() > MAX_FRAME {
        return Err(NetError::FrameTooLarge { size: payload.len() });
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame from `r`.
///
/// # Errors
///
/// [`NetError::Disconnected`] on clean EOF before a frame starts;
/// [`NetError::FrameTooLarge`] for absurd lengths; [`NetError::Io`]
/// otherwise.
pub fn read_frame<R: Read>(mut r: R) -> Result<Vec<u8>, NetError> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
            return Err(NetError::Disconnected)
        }
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(NetError::FrameTooLarge { size: len });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trip_various_sizes() {
        for len in [0usize, 1, 100, 65_536] {
            let payload = vec![0xabu8; len];
            let mut buf = Vec::new();
            write_frame(&mut buf, &payload).unwrap();
            assert_eq!(buf.len(), 4 + len);
            let back = read_frame(Cursor::new(&buf)).unwrap();
            assert_eq!(back, payload);
        }
    }

    #[test]
    fn multiple_frames_in_sequence() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"one").unwrap();
        write_frame(&mut buf, b"two").unwrap();
        let mut cursor = Cursor::new(&buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"one");
        assert_eq!(read_frame(&mut cursor).unwrap(), b"two");
        assert!(matches!(read_frame(&mut cursor), Err(NetError::Disconnected)));
    }

    #[test]
    fn eof_mid_frame_is_io_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(6); // cut payload short
        assert!(matches!(read_frame(Cursor::new(&buf)), Err(NetError::Io(_))));
    }

    #[test]
    fn oversize_length_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        assert!(matches!(read_frame(Cursor::new(&buf)), Err(NetError::FrameTooLarge { .. })));
    }

    #[test]
    fn oversize_payload_rejected_on_write() {
        let huge = vec![0u8; MAX_FRAME + 1];
        let mut buf = Vec::new();
        assert!(matches!(write_frame(&mut buf, &huge), Err(NetError::FrameTooLarge { .. })));
    }
}
