//! Base64 text envelopes, following the paper's wire serialisation.
//!
//! Every SCBR message crosses the network as one text line:
//!
//! ```text
//! SCBR1 <kind> <base64-payload>
//! ```
//!
//! where `<kind>` names the message type and the payload is opaque bytes
//! (usually ciphertext). Text framing makes captures human-inspectable
//! while leaking nothing beyond message kind and size — the same trade-off
//! the prototype made.

use crate::error::NetError;
use scbr_crypto::base64;

/// Magic prefix identifying protocol version 1.
pub const MAGIC: &str = "SCBR1";

/// A typed, Base64-encoded message envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Message kind tag (e.g. `"sub"`, `"pub"`, `"key"`). Must be non-empty
    /// ASCII without whitespace.
    pub kind: String,
    /// Raw payload bytes.
    pub payload: Vec<u8>,
}

impl Envelope {
    /// Creates an envelope.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is empty or contains whitespace (programmer error).
    pub fn new(kind: &str, payload: Vec<u8>) -> Self {
        assert!(
            !kind.is_empty() && !kind.contains(char::is_whitespace),
            "envelope kind must be non-empty and whitespace-free"
        );
        Envelope { kind: kind.to_owned(), payload }
    }

    /// Serialises to the one-line text form.
    pub fn encode(&self) -> String {
        format!("{MAGIC} {} {}", self.kind, base64::encode(&self.payload))
    }

    /// Serialises to bytes (the text form as UTF-8).
    pub fn encode_bytes(&self) -> Vec<u8> {
        self.encode().into_bytes()
    }

    /// Parses the one-line text form.
    ///
    /// # Errors
    ///
    /// [`NetError::Malformed`] if the magic, structure or Base64 is wrong.
    pub fn decode(text: &str) -> Result<Self, NetError> {
        let mut parts = text.trim_end_matches('\n').splitn(3, ' ');
        let magic = parts.next().unwrap_or_default();
        if magic != MAGIC {
            return Err(NetError::Malformed { context: "envelope magic" });
        }
        let kind = parts.next().ok_or(NetError::Malformed { context: "envelope kind" })?;
        if kind.is_empty() {
            return Err(NetError::Malformed { context: "envelope kind" });
        }
        let b64 = parts.next().unwrap_or("");
        let payload =
            base64::decode(b64).map_err(|_| NetError::Malformed { context: "envelope payload" })?;
        Ok(Envelope { kind: kind.to_owned(), payload })
    }

    /// Parses from bytes (UTF-8 text form).
    ///
    /// # Errors
    ///
    /// [`NetError::Malformed`] on invalid UTF-8 or envelope structure.
    pub fn decode_bytes(bytes: &[u8]) -> Result<Self, NetError> {
        let text = std::str::from_utf8(bytes)
            .map_err(|_| NetError::Malformed { context: "envelope utf-8" })?;
        Self::decode(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let env = Envelope::new("sub", vec![1, 2, 3, 255]);
        let text = env.encode();
        assert!(text.starts_with("SCBR1 sub "));
        assert_eq!(Envelope::decode(&text).unwrap(), env);
    }

    #[test]
    fn round_trip_bytes() {
        let env = Envelope::new("pub", b"header".to_vec());
        assert_eq!(Envelope::decode_bytes(&env.encode_bytes()).unwrap(), env);
    }

    #[test]
    fn empty_payload_ok() {
        let env = Envelope::new("ping", Vec::new());
        assert_eq!(Envelope::decode(&env.encode()).unwrap().payload, Vec::<u8>::new());
    }

    #[test]
    fn trailing_newline_tolerated() {
        let env = Envelope::new("x", vec![9]);
        let mut text = env.encode();
        text.push('\n');
        assert_eq!(Envelope::decode(&text).unwrap(), env);
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(Envelope::decode("SCBR2 sub AA==").is_err());
        assert!(Envelope::decode("garbage").is_err());
        assert!(Envelope::decode("").is_err());
    }

    #[test]
    fn rejects_bad_base64() {
        assert!(Envelope::decode("SCBR1 sub not-base64!").is_err());
    }

    #[test]
    fn rejects_missing_kind() {
        assert!(Envelope::decode("SCBR1").is_err());
    }

    #[test]
    #[should_panic(expected = "whitespace-free")]
    fn panics_on_bad_kind() {
        Envelope::new("two words", Vec::new());
    }
}
