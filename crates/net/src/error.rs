//! Error type for transport operations.

use std::error::Error;
use std::fmt;

/// Errors raised by the messaging substrate.
#[derive(Debug)]
#[non_exhaustive]
pub enum NetError {
    /// The peer disconnected or the endpoint was closed.
    Disconnected,
    /// No endpoint is bound under the requested name/address.
    NoSuchEndpoint {
        /// The name that failed to resolve.
        name: String,
    },
    /// An endpoint name is already bound.
    AddressInUse {
        /// The conflicting name.
        name: String,
    },
    /// A frame or envelope could not be decoded.
    Malformed {
        /// What was being decoded.
        context: &'static str,
    },
    /// A frame exceeds the size limit.
    FrameTooLarge {
        /// Offending size in bytes.
        size: usize,
    },
    /// An *authentic* sealed-link frame arrived from the future: its
    /// sequence number is ahead of the receive counter, proving the
    /// frames in between were lost in transit. This is a liveness
    /// signal, not a forgery — the overlay uses it to detect silently
    /// dropped traffic (e.g. a crashed peer) and trigger link
    /// re-establishment.
    Gap {
        /// The sequence number the receiver expected next.
        expected: u64,
        /// The (authenticated) sequence number the frame carried.
        got: u64,
    },
    /// Underlying I/O failure (TCP transport).
    Io(std::io::Error),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Disconnected => write!(f, "peer disconnected"),
            NetError::NoSuchEndpoint { name } => write!(f, "no endpoint bound as {name:?}"),
            NetError::AddressInUse { name } => write!(f, "endpoint {name:?} already bound"),
            NetError::Malformed { context } => write!(f, "malformed {context}"),
            NetError::FrameTooLarge { size } => write!(f, "frame of {size} bytes exceeds limit"),
            NetError::Gap { expected, got } => {
                write!(f, "sequence gap on sealed link: expected frame {expected}, got {got}")
            }
            NetError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl Error for NetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(NetError::Disconnected.to_string().contains("disconnected"));
        assert!(NetError::NoSuchEndpoint { name: "r".into() }.to_string().contains("r"));
        assert!(NetError::FrameTooLarge { size: 10 }.to_string().contains("10"));
        let gap = NetError::Gap { expected: 3, got: 7 }.to_string();
        assert!(gap.contains('3') && gap.contains('7'));
    }

    #[test]
    fn io_error_wraps() {
        let e: NetError = std::io::Error::other("boom").into();
        assert!(e.to_string().contains("boom"));
        assert!(e.source().is_some());
    }
}
