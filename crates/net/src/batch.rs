//! Batch framing: many sub-frames packed into one wire unit.
//!
//! The batch-first routing pipeline ships publications in groups so the
//! router can match a whole group through a single enclave crossing. On
//! the wire a batch is one ordinary frame/envelope whose payload packs the
//! member frames:
//!
//! ```text
//! u32 count | (u32 len | len bytes) × count      (big-endian)
//! ```
//!
//! The format is content-agnostic — members are opaque byte strings — so
//! the same packing serves protocol-level publication batches today and
//! any future batched message kind. Sizes are validated against
//! [`crate::frame::MAX_FRAME`] on both sides, mirroring the stream
//! framing's defence against corrupt length prefixes.

use crate::error::NetError;
use crate::frame::MAX_FRAME;

/// Maximum number of members accepted in one batch (sanity bound against
/// corrupt counts; generous next to any useful drain size).
pub const MAX_BATCH_ITEMS: usize = 65_536;

/// Packs `items` into a single batch payload.
///
/// # Errors
///
/// [`NetError::FrameTooLarge`] if an item, or the packed batch, exceeds
/// [`MAX_FRAME`]; [`NetError::Malformed`] if there are more than
/// [`MAX_BATCH_ITEMS`] items.
pub fn pack<I, B>(items: I) -> Result<Vec<u8>, NetError>
where
    I: IntoIterator<Item = B>,
    B: AsRef<[u8]>,
{
    let mut out = vec![0u8; 4];
    let mut count: usize = 0;
    for item in items {
        let item = item.as_ref();
        if item.len() > MAX_FRAME {
            return Err(NetError::FrameTooLarge { size: item.len() });
        }
        count += 1;
        if count > MAX_BATCH_ITEMS {
            return Err(NetError::Malformed { context: "batch item count" });
        }
        out.extend_from_slice(&(item.len() as u32).to_be_bytes());
        out.extend_from_slice(item);
        if out.len() > MAX_FRAME {
            return Err(NetError::FrameTooLarge { size: out.len() });
        }
    }
    out[..4].copy_from_slice(&(count as u32).to_be_bytes());
    Ok(out)
}

/// Unpacks a batch payload produced by [`pack`].
///
/// # Errors
///
/// [`NetError::Malformed`] on truncated payloads, trailing bytes or
/// absurd counts; [`NetError::FrameTooLarge`] for oversized members.
pub fn unpack(payload: &[u8]) -> Result<Vec<Vec<u8>>, NetError> {
    if payload.len() < 4 {
        return Err(NetError::Malformed { context: "batch header" });
    }
    let count = u32::from_be_bytes(payload[..4].try_into().expect("4 bytes")) as usize;
    if count > MAX_BATCH_ITEMS {
        return Err(NetError::Malformed { context: "batch item count" });
    }
    let mut items = Vec::with_capacity(count.min(1024));
    let mut at = 4usize;
    for _ in 0..count {
        let Some(len_bytes) = payload.get(at..at + 4) else {
            return Err(NetError::Malformed { context: "batch item length" });
        };
        let len = u32::from_be_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME {
            return Err(NetError::FrameTooLarge { size: len });
        }
        at += 4;
        let Some(body) = payload.get(at..at + len) else {
            return Err(NetError::Malformed { context: "batch item body" });
        };
        items.push(body.to_vec());
        at += len;
    }
    if at != payload.len() {
        return Err(NetError::Malformed { context: "batch trailing bytes" });
    }
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let items: Vec<Vec<u8>> = vec![b"one".to_vec(), Vec::new(), vec![0xff; 1000]];
        let packed = pack(&items).unwrap();
        assert_eq!(unpack(&packed).unwrap(), items);
    }

    #[test]
    fn empty_batch_round_trips() {
        let packed = pack(Vec::<Vec<u8>>::new()).unwrap();
        assert_eq!(packed, vec![0, 0, 0, 0]);
        assert!(unpack(&packed).unwrap().is_empty());
    }

    #[test]
    fn truncated_payload_rejected() {
        let packed = pack([b"hello".as_slice()]).unwrap();
        for cut in [0, 2, 5, packed.len() - 1] {
            assert!(unpack(&packed[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut packed = pack([b"x".as_slice()]).unwrap();
        packed.push(0);
        assert!(matches!(unpack(&packed), Err(NetError::Malformed { .. })));
    }

    #[test]
    fn lying_count_rejected() {
        let mut packed = pack([b"x".as_slice()]).unwrap();
        packed[..4].copy_from_slice(&2u32.to_be_bytes());
        assert!(unpack(&packed).is_err());
        packed[..4].copy_from_slice(&(MAX_BATCH_ITEMS as u32 + 1).to_be_bytes());
        assert!(matches!(unpack(&packed), Err(NetError::Malformed { .. })));
    }

    #[test]
    fn oversize_member_rejected_on_pack() {
        let huge = vec![0u8; MAX_FRAME + 1];
        assert!(matches!(pack([huge.as_slice()]), Err(NetError::FrameTooLarge { .. })));
    }
}
