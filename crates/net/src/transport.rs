//! Connection-oriented transports: in-process and TCP.
//!
//! SCBR's roles (producer, router, client) talk over a [`Transport`]. The
//! in-process implementation gives deterministic, dependency-free tests and
//! benchmarks; the TCP implementation lets the examples run as separate
//! processes, standing in for the prototype's ZeroMQ sockets.

use crate::error::NetError;
use crate::frame;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{BufReader, BufWriter};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

/// A bidirectional, message-oriented connection.
///
/// Implementations are `Sync` so one connection can be shared between a
/// blocking reader thread and writers (`Arc<dyn Connection>`).
pub trait Connection: Send + Sync {
    /// Sends one frame.
    ///
    /// # Errors
    ///
    /// [`NetError::Disconnected`] if the peer is gone.
    fn send(&self, frame: &[u8]) -> Result<(), NetError>;

    /// Blocks until one frame arrives.
    ///
    /// # Errors
    ///
    /// [`NetError::Disconnected`] if the peer closed the connection.
    fn recv(&self) -> Result<Vec<u8>, NetError>;

    /// Waits up to `timeout` for a frame; `Ok(None)` on timeout.
    ///
    /// # Errors
    ///
    /// [`NetError::Disconnected`] if the peer closed the connection.
    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Vec<u8>>, NetError>;
}

/// Accepts incoming connections.
pub trait Listener: Send {
    /// Blocks until a peer connects.
    ///
    /// # Errors
    ///
    /// [`NetError::Disconnected`] if the endpoint was shut down.
    fn accept(&self) -> Result<Box<dyn Connection>, NetError>;
}

/// A factory of listeners and outgoing connections, keyed by endpoint name.
pub trait Transport {
    /// Binds a named endpoint.
    ///
    /// # Errors
    ///
    /// [`NetError::AddressInUse`] if the name is taken, or I/O errors.
    fn bind(&self, name: &str) -> Result<Box<dyn Listener>, NetError>;

    /// Connects to a named endpoint.
    ///
    /// # Errors
    ///
    /// [`NetError::NoSuchEndpoint`] if nothing is bound under `name`.
    fn connect(&self, name: &str) -> Result<Box<dyn Connection>, NetError>;
}

// ---------------------------------------------------------------------------
// In-process transport
// ---------------------------------------------------------------------------

/// One side of an in-process connection.
#[derive(Debug)]
pub struct InProcConnection {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

impl Connection for InProcConnection {
    fn send(&self, frame: &[u8]) -> Result<(), NetError> {
        self.tx.send(frame.to_vec()).map_err(|_| NetError::Disconnected)
    }

    fn recv(&self) -> Result<Vec<u8>, NetError> {
        self.rx.recv().map_err(|_| NetError::Disconnected)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Vec<u8>>, NetError> {
        match self.rx.recv_timeout(timeout) {
            Ok(frame) => Ok(Some(frame)),
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => Ok(None),
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => Err(NetError::Disconnected),
        }
    }
}

/// Listener side of an in-process endpoint.
#[derive(Debug)]
pub struct InProcListener {
    incoming: Receiver<InProcConnection>,
}

impl Listener for InProcListener {
    fn accept(&self) -> Result<Box<dyn Connection>, NetError> {
        self.incoming
            .recv()
            .map(|c| Box::new(c) as Box<dyn Connection>)
            .map_err(|_| NetError::Disconnected)
    }
}

/// A named in-process network: endpoints live in a shared registry.
///
/// Cloning shares the registry, so hand clones to each role/thread.
#[derive(Debug, Clone, Default)]
pub struct InProcNetwork {
    registry: Arc<Mutex<HashMap<String, Sender<InProcConnection>>>>,
}

impl InProcNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        InProcNetwork::default()
    }

    /// Removes a bound endpoint, disconnecting its listener.
    pub fn unbind(&self, name: &str) {
        self.registry.lock().remove(name);
    }
}

impl Transport for InProcNetwork {
    fn bind(&self, name: &str) -> Result<Box<dyn Listener>, NetError> {
        let mut reg = self.registry.lock();
        if reg.contains_key(name) {
            return Err(NetError::AddressInUse { name: name.to_owned() });
        }
        let (tx, rx) = unbounded();
        reg.insert(name.to_owned(), tx);
        Ok(Box::new(InProcListener { incoming: rx }))
    }

    fn connect(&self, name: &str) -> Result<Box<dyn Connection>, NetError> {
        let reg = self.registry.lock();
        let acceptor =
            reg.get(name).ok_or_else(|| NetError::NoSuchEndpoint { name: name.to_owned() })?;
        let (a_tx, b_rx) = unbounded();
        let (b_tx, a_rx) = unbounded();
        let server_side = InProcConnection { tx: b_tx, rx: b_rx };
        acceptor.send(server_side).map_err(|_| NetError::Disconnected)?;
        Ok(Box::new(InProcConnection { tx: a_tx, rx: a_rx }))
    }
}

// ---------------------------------------------------------------------------
// TCP transport
// ---------------------------------------------------------------------------

/// A TCP connection carrying length-prefixed frames.
#[derive(Debug)]
pub struct TcpConnection {
    reader: Mutex<BufReader<TcpStream>>,
    writer: Mutex<BufWriter<TcpStream>>,
}

impl TcpConnection {
    fn from_stream(stream: TcpStream) -> Result<Self, NetError> {
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        Ok(TcpConnection { reader: Mutex::new(reader), writer: Mutex::new(writer) })
    }
}

impl Connection for TcpConnection {
    fn send(&self, payload: &[u8]) -> Result<(), NetError> {
        frame::write_frame(&mut *self.writer.lock(), payload)
    }

    fn recv(&self) -> Result<Vec<u8>, NetError> {
        frame::read_frame(&mut *self.reader.lock())
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Vec<u8>>, NetError> {
        let mut reader = self.reader.lock();
        // A zero duration means "disable timeouts" to the socket API;
        // callers mean "poll", so clamp to the shortest representable wait.
        let timeout = timeout.max(Duration::from_millis(1));
        reader.get_ref().set_read_timeout(Some(timeout))?;
        let result = match frame::read_frame(&mut *reader) {
            Ok(f) => Ok(Some(f)),
            Err(NetError::Io(e))
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            Err(e) => Err(e),
        };
        reader.get_ref().set_read_timeout(None)?;
        result
    }
}

/// Listener for TCP endpoints.
#[derive(Debug)]
pub struct TcpEndpointListener {
    listener: TcpListener,
}

impl Listener for TcpEndpointListener {
    fn accept(&self) -> Result<Box<dyn Connection>, NetError> {
        let (stream, _) = self.listener.accept()?;
        stream.set_nodelay(true).ok();
        Ok(Box::new(TcpConnection::from_stream(stream)?))
    }
}

/// TCP transport: endpoint names are socket addresses (`host:port`).
#[derive(Debug, Clone, Default)]
pub struct TcpTransport;

impl TcpTransport {
    /// Creates the transport.
    pub fn new() -> Self {
        TcpTransport
    }

    /// Binds to an OS-assigned port on localhost, returning the listener
    /// and the address to hand to peers.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn bind_ephemeral(&self) -> Result<(Box<dyn Listener>, String), NetError> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?.to_string();
        Ok((Box::new(TcpEndpointListener { listener }), addr))
    }
}

impl Transport for TcpTransport {
    fn bind(&self, name: &str) -> Result<Box<dyn Listener>, NetError> {
        let listener = TcpListener::bind(name)?;
        Ok(Box::new(TcpEndpointListener { listener }))
    }

    fn connect(&self, name: &str) -> Result<Box<dyn Connection>, NetError> {
        let mut last_err = None;
        for addr in name
            .to_socket_addrs()
            .map_err(|_| NetError::NoSuchEndpoint { name: name.to_owned() })?
        {
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    stream.set_nodelay(true).ok();
                    return Ok(Box::new(TcpConnection::from_stream(stream)?));
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err
            .map(NetError::Io)
            .unwrap_or(NetError::NoSuchEndpoint { name: name.to_owned() }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn inproc_round_trip() {
        let net = InProcNetwork::new();
        let listener = net.bind("svc").unwrap();
        let client = net.connect("svc").unwrap();
        let server = listener.accept().unwrap();
        client.send(b"ping").unwrap();
        assert_eq!(server.recv().unwrap(), b"ping");
        server.send(b"pong").unwrap();
        assert_eq!(client.recv().unwrap(), b"pong");
    }

    #[test]
    fn inproc_double_bind_rejected() {
        let net = InProcNetwork::new();
        let _l = net.bind("svc").unwrap();
        assert!(matches!(net.bind("svc"), Err(NetError::AddressInUse { .. })));
    }

    #[test]
    fn inproc_connect_unknown_fails() {
        let net = InProcNetwork::new();
        assert!(matches!(net.connect("ghost"), Err(NetError::NoSuchEndpoint { .. })));
    }

    #[test]
    fn inproc_disconnect_detected() {
        let net = InProcNetwork::new();
        let listener = net.bind("svc").unwrap();
        let client = net.connect("svc").unwrap();
        let server = listener.accept().unwrap();
        drop(client);
        assert!(matches!(server.recv(), Err(NetError::Disconnected)));
    }

    #[test]
    fn inproc_recv_timeout() {
        let net = InProcNetwork::new();
        let _listener = net.bind("svc").unwrap();
        let client = net.connect("svc").unwrap();
        let got = client.recv_timeout(Duration::from_millis(10)).unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn inproc_multiple_clients() {
        let net = InProcNetwork::new();
        let listener = net.bind("svc").unwrap();
        let c1 = net.connect("svc").unwrap();
        let c2 = net.connect("svc").unwrap();
        c1.send(b"from-1").unwrap();
        c2.send(b"from-2").unwrap();
        let s1 = listener.accept().unwrap();
        let s2 = listener.accept().unwrap();
        assert_eq!(s1.recv().unwrap(), b"from-1");
        assert_eq!(s2.recv().unwrap(), b"from-2");
    }

    #[test]
    fn tcp_round_trip() {
        let transport = TcpTransport::new();
        let (listener, addr) = transport.bind_ephemeral().unwrap();
        let handle = thread::spawn(move || {
            let conn = listener.accept().unwrap();
            let msg = conn.recv().unwrap();
            conn.send(&msg).unwrap(); // echo
        });
        let client = transport.connect(&addr).unwrap();
        client.send(b"hello over tcp").unwrap();
        assert_eq!(client.recv().unwrap(), b"hello over tcp");
        handle.join().unwrap();
    }

    #[test]
    fn tcp_connect_refused() {
        let transport = TcpTransport::new();
        // Port 1 on localhost is essentially never listening.
        assert!(transport.connect("127.0.0.1:1").is_err());
    }

    #[test]
    fn tcp_disconnect_detected() {
        let transport = TcpTransport::new();
        let (listener, addr) = transport.bind_ephemeral().unwrap();
        let client = transport.connect(&addr).unwrap();
        let server = listener.accept().unwrap();
        drop(client);
        assert!(matches!(server.recv(), Err(NetError::Disconnected)));
    }
}
