//! # scbr-net
//!
//! Messaging substrate for the SCBR reproduction.
//!
//! The paper's prototype used ZeroMQ and serialised messages
//! "in Base64 text format". This crate provides the equivalent plumbing
//! with no external dependency:
//!
//! * [`frame`] — length-prefixed binary framing over any byte stream;
//! * [`batch`] — many sub-frames packed into one wire unit, the transport
//!   of the batch-first routing pipeline;
//! * [`envelope`] — the Base64 text envelope (`SCBR1 <kind> <payload>`)
//!   used on the wire;
//! * [`link`] — sealed broker-to-broker channels (AEAD with direction and
//!   sequence bound as associated data), the transport of the overlay
//!   fabric's inter-router links;
//! * [`transport`] — a blocking connection/listener abstraction with two
//!   implementations: an in-process network ([`transport::InProcNetwork`])
//!   for deterministic tests and benchmarks, and TCP
//!   ([`transport::TcpTransport`]) for the runnable examples.
//!
//! ## Example
//!
//! ```
//! use scbr_net::transport::{InProcNetwork, Transport};
//!
//! let net = InProcNetwork::new();
//! let listener = net.bind("router")?;
//! let client = net.connect("router")?;
//! client.send(b"subscribe")?;
//! let server_side = listener.accept()?;
//! assert_eq!(server_side.recv()?, b"subscribe");
//! # Ok::<(), scbr_net::NetError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod envelope;
pub mod error;
pub mod frame;
pub mod link;
pub mod transport;

pub use envelope::Envelope;
pub use error::NetError;
pub use link::SecureLink;
pub use transport::{Connection, InProcNetwork, Listener, TcpTransport, Transport};
