//! Sealed link channels: authenticated encryption for broker-to-broker
//! overlay links.
//!
//! Once two routers have agreed on a link key (e.g. via the mutual
//! attestation handshake in `sgx_sim::link`), every frame between them
//! travels through a [`SecureLink`]: AES-CTR + HMAC with the frame's
//! **direction and sequence number** bound in as associated data. That
//! gives each link:
//!
//! * confidentiality — the infrastructure between two brokers sees only
//!   ciphertext (it already cannot read headers, which are encrypted under
//!   `SK`, but link sealing also hides message kinds, sizes of inner
//!   fields, and the registration traffic pattern);
//! * integrity — a flipped bit anywhere is detected;
//! * replay/reorder protection — a captured frame cannot be replayed nor
//!   delivered out of order, because the receive counter must match;
//! * direction binding — a frame sealed A→B never opens as B→A, even
//!   though both directions share one key;
//! * **loss detection** — each frame carries its sequence number in the
//!   clear (it is authenticated through the associated data, and frame
//!   *ordering* is visible to the infrastructure anyway). When an
//!   authentic frame arrives whose sequence is ahead of the receive
//!   counter, [`SecureLink::open`] reports a typed
//!   [`NetError::Gap`] instead of a generic failure: proof that the
//!   intervening frames were lost, which the overlay uses as the
//!   liveness signal for crashed peers and link re-establishment.
//!
//! One [`SecureLink`] value handles **one direction**; an endpoint owns
//! two (its outbound and inbound halves), constructed with mirrored
//! endpoint identifiers.
//!
//! Alongside the sequence number, every frame carries an 8-byte **meta
//! word** in the clear — routing metadata such as a telemetry trace id.
//! Like the sequence number it is authenticated through the associated
//! data (it cannot be altered undetected) but deliberately not
//! encrypted: it describes the *frame*, not the content, and reveals
//! nothing beyond the linkability that frame observation (sizes,
//! direction, timing, sequence) already provides.

use crate::error::NetError;
use scbr_crypto::rng::CryptoRng;
use scbr_crypto::{SealedBox, SymmetricKey};

/// One direction of a sealed broker-to-broker link.
///
/// ```
/// use scbr_net::link::SecureLink;
/// use scbr_crypto::rng::CryptoRng;
///
/// let key = [7u8; 32];
/// let mut rng = CryptoRng::from_seed(1);
/// let mut a_to_b = SecureLink::outbound(&key, 0, 1);
/// let mut b_from_a = SecureLink::inbound(&key, 1, 0);
/// let sealed = a_to_b.seal(b"publish batch", &mut rng);
/// assert_eq!(b_from_a.open(&sealed).unwrap(), b"publish batch");
/// ```
#[derive(Debug)]
pub struct SecureLink {
    sealer: SealedBox,
    label: Vec<u8>,
    seq: u64,
    /// First sequence gap observed on this (inbound) half, if any:
    /// `(expected, got)` at the moment the gap surfaced. Sticky — a
    /// gapped link cannot make progress, so the record stands until the
    /// link is re-keyed (a fresh [`SecureLink`]).
    gap: Option<(u64, u64)>,
    /// Meta word of the last successfully opened frame (inbound half).
    last_meta: u64,
}

/// Associated data for frame `seq` on the link from `from` to `to`.
fn direction_label(from: u64, to: u64) -> Vec<u8> {
    let mut label = b"scbr-link ".to_vec();
    label.extend_from_slice(&from.to_be_bytes());
    label.extend_from_slice(&to.to_be_bytes());
    label
}

impl SecureLink {
    /// The sending half at endpoint `local`, towards `peer`.
    pub fn outbound(key: &[u8], local: u64, peer: u64) -> Self {
        SecureLink {
            sealer: SealedBox::new(&SymmetricKey::from_bytes(key)),
            label: direction_label(local, peer),
            seq: 0,
            gap: None,
            last_meta: 0,
        }
    }

    /// The receiving half at endpoint `local`, from `peer`.
    pub fn inbound(key: &[u8], local: u64, peer: u64) -> Self {
        SecureLink {
            sealer: SealedBox::new(&SymmetricKey::from_bytes(key)),
            label: direction_label(peer, local),
            seq: 0,
            gap: None,
            last_meta: 0,
        }
    }

    /// Frames sealed (outbound half) or expected (inbound half) so far.
    pub fn sequence(&self) -> u64 {
        self.seq
    }

    /// The first sequence gap this inbound half observed, as
    /// `(expected, got)`. A gapped link is wedged — the lost frames will
    /// never arrive and the counter cannot advance — so the record is
    /// sticky until the link is re-keyed. This is the per-channel wedge
    /// predicate the overlay's suspicion timers key off.
    pub fn gap_observed(&self) -> Option<(u64, u64)> {
        self.gap
    }

    /// Meta word of the most recently opened frame on this inbound half
    /// (0 until a frame opens, and for frames sealed without metadata).
    pub fn last_meta(&self) -> u64 {
        self.last_meta
    }

    fn aad_for(&self, seq: u64, meta: u64) -> Vec<u8> {
        let mut aad = self.label.clone();
        aad.extend_from_slice(&seq.to_be_bytes());
        aad.extend_from_slice(&meta.to_be_bytes());
        aad
    }

    /// Seals one outbound frame with a zero meta word, advancing the
    /// sequence counter. The sequence number travels in the clear ahead
    /// of the ciphertext (authenticated via the associated data) so the
    /// receiver can distinguish a *lost-frame gap* from a forgery.
    pub fn seal(&mut self, plain: &[u8], rng: &mut CryptoRng) -> Vec<u8> {
        self.seal_meta(plain, 0, rng)
    }

    /// Seals one outbound frame carrying `meta` in the clear (bound into
    /// the associated data, so tampering is detected on open).
    pub fn seal_meta(&mut self, plain: &[u8], meta: u64, rng: &mut CryptoRng) -> Vec<u8> {
        let mut frame = self.seq.to_be_bytes().to_vec();
        frame.extend_from_slice(&meta.to_be_bytes());
        frame.extend_from_slice(&self.sealer.seal(plain, &self.aad_for(self.seq, meta), rng));
        self.seq += 1;
        frame
    }

    /// Opens the next inbound frame. The counter advances only on
    /// success, so a tampered frame does not desynchronise the link.
    ///
    /// # Errors
    ///
    /// [`NetError::Malformed`] when authentication fails — tampering, a
    /// replayed or reordered frame, the wrong direction, or the wrong
    /// key. [`NetError::Gap`] when the frame is *authentic* but its
    /// sequence number is ahead of the receive counter: the frames in
    /// between were lost, and the link cannot make progress until it is
    /// re-established (the counter does not advance).
    pub fn open(&mut self, sealed: &[u8]) -> Result<Vec<u8>, NetError> {
        if sealed.len() < 16 {
            return Err(NetError::Malformed { context: "sealed link frame" });
        }
        let (header, body) = sealed.split_at(16);
        let claimed = u64::from_be_bytes(header[..8].try_into().expect("8 bytes"));
        let meta = u64::from_be_bytes(header[8..].try_into().expect("8 bytes"));
        if claimed < self.seq {
            // A frame from the past is a replay regardless of its MAC.
            return Err(NetError::Malformed { context: "sealed link frame" });
        }
        let plain = self
            .sealer
            .open(body, &self.aad_for(claimed, meta))
            .map_err(|_| NetError::Malformed { context: "sealed link frame" })?;
        if claimed > self.seq {
            if self.gap.is_none() {
                self.gap = Some((self.seq, claimed));
            }
            return Err(NetError::Gap { expected: self.seq, got: claimed });
        }
        self.seq += 1;
        self.last_meta = meta;
        Ok(plain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: [u8; 32] = [0x42; 32];

    fn pair() -> (SecureLink, SecureLink) {
        (SecureLink::outbound(&KEY, 5, 9), SecureLink::inbound(&KEY, 9, 5))
    }

    #[test]
    fn frames_round_trip_in_order() {
        let (mut tx, mut rx) = pair();
        let mut rng = CryptoRng::from_seed(1);
        for i in 0..5u8 {
            let sealed = tx.seal(&[i; 10], &mut rng);
            assert_eq!(rx.open(&sealed).unwrap(), vec![i; 10]);
        }
        assert_eq!(tx.sequence(), 5);
        assert_eq!(rx.sequence(), 5);
    }

    #[test]
    fn replay_is_rejected() {
        let (mut tx, mut rx) = pair();
        let mut rng = CryptoRng::from_seed(2);
        let sealed = tx.seal(b"once", &mut rng);
        assert!(rx.open(&sealed).is_ok());
        assert!(rx.open(&sealed).is_err(), "same frame must not open twice");
    }

    #[test]
    fn reorder_is_rejected() {
        let (mut tx, mut rx) = pair();
        let mut rng = CryptoRng::from_seed(3);
        let first = tx.seal(b"first", &mut rng);
        let second = tx.seal(b"second", &mut rng);
        assert!(rx.open(&second).is_err(), "skipping a frame fails");
        // The failed open did not advance the counter: in-order delivery
        // still works.
        assert!(rx.open(&first).is_ok());
        assert!(rx.open(&second).is_ok());
    }

    #[test]
    fn lost_frame_surfaces_as_typed_gap() {
        let (mut tx, mut rx) = pair();
        let mut rng = CryptoRng::from_seed(7);
        let _lost = tx.seal(b"frame 0", &mut rng);
        let _also_lost = tx.seal(b"frame 1", &mut rng);
        let arrives = tx.seal(b"frame 2", &mut rng);
        match rx.open(&arrives) {
            Err(NetError::Gap { expected: 0, got: 2 }) => {}
            other => panic!("expected Gap {{ expected: 0, got: 2 }}, got {other:?}"),
        }
        // A gap does not advance the counter: the link is stuck (the lost
        // frames will never arrive) until it is re-established.
        assert_eq!(rx.sequence(), 0);
        // The wedge is recorded stickily, pinned to the *first* gap.
        assert_eq!(rx.gap_observed(), Some((0, 2)));
        let later = tx.seal(b"frame 3", &mut rng);
        assert!(matches!(rx.open(&later), Err(NetError::Gap { expected: 0, got: 3 })));
        assert_eq!(rx.gap_observed(), Some((0, 2)), "first gap record is sticky");
    }

    #[test]
    fn healthy_link_records_no_gap() {
        let (mut tx, mut rx) = pair();
        let mut rng = CryptoRng::from_seed(9);
        for _ in 0..3 {
            let sealed = tx.seal(b"ok", &mut rng);
            rx.open(&sealed).unwrap();
        }
        assert_eq!(rx.gap_observed(), None);
        // A forged frame is a Malformed error, never a gap record.
        let mut forged = tx.seal(b"x", &mut rng);
        let n = forged.len();
        forged[n - 1] ^= 1;
        assert!(rx.open(&forged).is_err());
        assert_eq!(rx.gap_observed(), None);
    }

    #[test]
    fn gap_requires_an_authentic_frame() {
        // A forged "future" frame must read as tampering, not as a gap —
        // otherwise the infrastructure could fake liveness signals.
        let (mut tx, mut rx) = pair();
        let mut rng = CryptoRng::from_seed(8);
        let _lost = tx.seal(b"frame 0", &mut rng);
        let mut future = tx.seal(b"frame 1", &mut rng);
        let n = future.len();
        future[n - 1] ^= 1;
        assert!(
            matches!(rx.open(&future), Err(NetError::Malformed { .. })),
            "tampered future frame is a forgery, not a gap"
        );
        // Relabelling an old frame as a future one fails the same way.
        let (mut tx2, mut rx2) = pair();
        let mut relabelled = tx2.seal(b"frame 0", &mut rng);
        relabelled[..8].copy_from_slice(&5u64.to_be_bytes());
        assert!(matches!(rx2.open(&relabelled), Err(NetError::Malformed { .. })));
        // Truncated-to-header frames are malformed outright.
        assert!(matches!(rx2.open(&[1, 2, 3]), Err(NetError::Malformed { .. })));
    }

    #[test]
    fn tampering_is_rejected() {
        let (mut tx, mut rx) = pair();
        let mut rng = CryptoRng::from_seed(4);
        let mut sealed = tx.seal(b"payload", &mut rng);
        let n = sealed.len();
        sealed[n / 2] ^= 1;
        assert!(rx.open(&sealed).is_err());
    }

    #[test]
    fn direction_is_bound() {
        // B cannot reflect A's frame back to A, even with the shared key.
        let mut a_out = SecureLink::outbound(&KEY, 1, 2);
        let mut a_in = SecureLink::inbound(&KEY, 1, 2);
        let mut rng = CryptoRng::from_seed(5);
        let sealed = a_out.seal(b"hello", &mut rng);
        assert!(a_in.open(&sealed).is_err(), "A->B frame must not open as B->A");
    }

    #[test]
    fn wrong_key_is_rejected() {
        let mut tx = SecureLink::outbound(&KEY, 1, 2);
        let mut rx = SecureLink::inbound(&[0x43; 32], 2, 1);
        let mut rng = CryptoRng::from_seed(6);
        let sealed = tx.seal(b"hello", &mut rng);
        assert!(rx.open(&sealed).is_err());
    }

    #[test]
    fn meta_word_rides_in_clear_and_round_trips() {
        let (mut tx, mut rx) = pair();
        let mut rng = CryptoRng::from_seed(10);
        let sealed = tx.seal_meta(b"traced batch", 0xDEAD_BEEF, &mut rng);
        // Visible to the infrastructure without the key…
        assert_eq!(u64::from_be_bytes(sealed[8..16].try_into().unwrap()), 0xDEAD_BEEF);
        // …and surfaced to the receiver after authentication.
        assert_eq!(rx.open(&sealed).unwrap(), b"traced batch");
        assert_eq!(rx.last_meta(), 0xDEAD_BEEF);
        // Plain `seal` carries meta 0 and resets the receiver's view.
        let plain = tx.seal(b"untraced", &mut rng);
        rx.open(&plain).unwrap();
        assert_eq!(rx.last_meta(), 0);
    }

    #[test]
    fn tampered_meta_word_is_detected() {
        let (mut tx, mut rx) = pair();
        let mut rng = CryptoRng::from_seed(11);
        let mut sealed = tx.seal_meta(b"payload", 7, &mut rng);
        sealed[15] ^= 1; // flip a bit of the in-clear meta word
        assert!(
            matches!(rx.open(&sealed), Err(NetError::Malformed { .. })),
            "meta is authenticated through the AAD"
        );
        assert_eq!(rx.last_meta(), 0, "failed open must not surface forged meta");
    }
}
