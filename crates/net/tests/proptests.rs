//! Fuzz-style properties of the wire substrate: round trips hold and
//! decoders never panic on adversarial input.

use proptest::prelude::*;
use scbr_net::envelope::Envelope;
use scbr_net::frame;
use std::io::Cursor;

proptest! {
    #[test]
    fn frame_round_trip(payload in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let mut buf = Vec::new();
        frame::write_frame(&mut buf, &payload).unwrap();
        prop_assert_eq!(frame::read_frame(Cursor::new(&buf)).unwrap(), payload);
    }

    #[test]
    fn frame_reader_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = frame::read_frame(Cursor::new(&bytes));
    }

    #[test]
    fn envelope_round_trip(kind_idx in 0usize..4,
                           payload in proptest::collection::vec(any::<u8>(), 0..1024)) {
        let kinds = ["sub", "pub", "key-update", "hello"];
        let env = Envelope::new(kinds[kind_idx], payload);
        prop_assert_eq!(Envelope::decode_bytes(&env.encode_bytes()).unwrap(), env);
    }

    #[test]
    fn envelope_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Envelope::decode_bytes(&bytes);
    }

    /// Any single-byte mutation of a valid envelope either still decodes
    /// to *some* envelope (text remains well-formed) or is rejected — it
    /// never panics and never produces the original payload with a
    /// different length.
    #[test]
    fn envelope_mutation_is_safe(payload in proptest::collection::vec(any::<u8>(), 1..128),
                                 flip in 0usize..4096) {
        let env = Envelope::new("pub", payload);
        let mut wire = env.encode_bytes();
        let idx = flip % wire.len();
        wire[idx] ^= 0x20;
        if let Ok(decoded) = Envelope::decode_bytes(&wire) {
            // Base64 body length can only map to the same payload length
            // when structure survived.
            prop_assert!(decoded.payload.len() <= env.payload.len() + 2);
        }
    }
}
