//! # scbr-bench
//!
//! Harnesses regenerating every table and figure of the SCBR paper's
//! evaluation (§4). One binary per artefact:
//!
//! | binary | artefact | what it prints |
//! |--------|----------|----------------|
//! | `table1` | Table 1 | the nine workload descriptions, measured from generated data |
//! | `fig5` | Figure 5 | matching time vs #subscriptions, {in, out} × {AES, plain}, `e100a1` |
//! | `fig6` | Figure 6 | matching time vs #subscriptions, all nine workloads, plaintext outside |
//! | `fig7` | Figure 7 | per workload: Out ASPE vs In AES vs Out AES + cache-miss % |
//! | `fig8` | Figure 8 | registration-time and page-fault in/out ratios vs database size |
//! | `scaleout` | extension | partitioned router vs the EPC limit, 1/2/4/8 slices |
//! | `batching` | extension | batch size × slice count: amortised enclave transitions |
//! | `overlay` | extension | broker chains: covering-pruned propagation, multi-hop batches |
//!
//! All times are **virtual nanoseconds** from the `sgx-sim` cost model
//! (deterministic, host-independent) unless a column is explicitly
//! labelled wall-clock; see `EXPERIMENTS.md` at the repository root for
//! the paper-vs-reproduction comparison.
//!
//! Set `SCBR_JSON=1` (or `SCBR_JSON=<dir>`) and the binaries additionally
//! write machine-readable `BENCH_<artefact>.json` files ([`json`]), so
//! the performance trajectory can be tracked across PRs.
//!
//! Scale is controlled by `SCBR_SCALE`:
//!
//! * `smoke` — seconds; CI sanity check.
//! * `quick` (default) — minutes; full curve shapes at reduced batch sizes.
//! * `full` — the paper's parameters (1 000-publication batches, 500 k
//!   registrations); expect a long run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

use scbr::engine::RouterEngine;
use scbr::ids::{ClientId, SubscriptionId};
use scbr::index::IndexKind;
use scbr::publication::PublicationSpec;
use scbr::subscription::SubscriptionSpec;
use scbr_aspe::{AspeAuthority, AspeMatcher};
use scbr_crypto::ctr::AesCtr;
use scbr_crypto::rng::CryptoRng;
use scbr_workloads::{MarketConfig, StockMarket, Workload};
use sgx_sim::{MemStats, SgxPlatform};

/// Experiment scale parameters.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Subscription-count checkpoints (x axis of Figures 5–7).
    pub sub_counts: Vec<usize>,
    /// Publications matched per checkpoint (the paper used 1 000).
    pub pubs_per_point: usize,
    /// Publications for the ASPE baseline (its matching is far slower).
    pub aspe_pubs_per_point: usize,
    /// Market generation parameters.
    pub market: MarketConfig,
    /// Maximum registrations for Figure 8 (the paper used 500 000).
    pub fig8_max_subs: usize,
    /// Averaging bucket for Figure 8 (the paper used 5 000).
    pub fig8_bucket: usize,
    /// Human-readable name of this scale.
    pub name: &'static str,
}

impl Scale {
    /// Reads the scale from `SCBR_SCALE` (`smoke`/`quick`/`full`).
    pub fn from_env() -> Self {
        match std::env::var("SCBR_SCALE").as_deref() {
            Ok("smoke") => Scale::smoke(),
            Ok("full") => Scale::full(),
            _ => Scale::quick(),
        }
    }

    /// Seconds-scale sanity run.
    pub fn smoke() -> Self {
        Scale {
            sub_counts: vec![500, 1_000, 2_500],
            pubs_per_point: 5,
            aspe_pubs_per_point: 2,
            market: MarketConfig::small(),
            fig8_max_subs: 30_000,
            fig8_bucket: 2_000,
            name: "smoke",
        }
    }

    /// Default: full curve shapes at reduced batch sizes.
    pub fn quick() -> Self {
        Scale {
            sub_counts: vec![1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000],
            pubs_per_point: 20,
            aspe_pubs_per_point: 4,
            market: MarketConfig::paper_scale(),
            fig8_max_subs: 500_000,
            fig8_bucket: 10_000,
            name: "quick",
        }
    }

    /// The paper's parameters.
    pub fn full() -> Self {
        Scale {
            sub_counts: vec![1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000],
            pubs_per_point: 1_000,
            aspe_pubs_per_point: 50,
            market: MarketConfig::paper_scale(),
            fig8_max_subs: 500_000,
            fig8_bucket: 5_000,
            name: "full",
        }
    }
}

/// One measured point: average per-publication matching time plus memory
/// counters.
#[derive(Debug, Clone, Copy)]
pub struct MatchPoint {
    /// Registered subscriptions at this checkpoint.
    pub subs: usize,
    /// Average matching time per publication, virtual microseconds.
    pub matching_us: f64,
    /// LLC miss rate during the measured batch.
    pub cache_miss_rate: f64,
    /// Index footprint in bytes.
    pub index_bytes: u64,
}

/// The four engine configurations of Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineConfig {
    /// Inside the enclave, AES-encrypted headers.
    InAes,
    /// Inside the enclave, plaintext headers.
    InPlain,
    /// Outside, AES-encrypted headers.
    OutAes,
    /// Outside, plaintext headers.
    OutPlain,
}

impl EngineConfig {
    /// Label used in the output tables.
    pub fn label(&self) -> &'static str {
        match self {
            EngineConfig::InAes => "in-aes",
            EngineConfig::InPlain => "in-plain",
            EngineConfig::OutAes => "out-aes",
            EngineConfig::OutPlain => "out-plain",
        }
    }

    /// Whether the engine sits inside the enclave.
    pub fn inside(&self) -> bool {
        matches!(self, EngineConfig::InAes | EngineConfig::InPlain)
    }

    /// Whether headers are AES-encrypted.
    pub fn encrypted(&self) -> bool {
        matches!(self, EngineConfig::InAes | EngineConfig::OutAes)
    }
}

/// A matching-experiment driver: one engine, one workload, incremental
/// subscription loading with measurements at each checkpoint.
pub struct MatchExperiment {
    engine: RouterEngine,
    config: EngineConfig,
    sk: scbr_crypto::ctr::SymmetricKey,
    loaded: usize,
}

impl MatchExperiment {
    /// Builds the engine for `config` on `platform`.
    pub fn new(platform: &SgxPlatform, config: EngineConfig) -> Self {
        let mut engine = if config.inside() {
            RouterEngine::in_enclave(platform, IndexKind::Poset).expect("enclave launch")
        } else {
            RouterEngine::outside(platform, IndexKind::Poset)
        };
        // A fixed SK: the key-exchange protocol is exercised in tests and
        // examples; experiments measure steady-state matching.
        let sk = scbr_crypto::ctr::SymmetricKey::from_bytes([0x5c; 16]);
        let pk = scbr_crypto::rsa::RsaPublicKey::from_parts(
            scbr_crypto::BigUint::from_u64(3233),
            scbr_crypto::BigUint::from_u64(17),
        );
        let sk_for_engine = sk.clone();
        engine.call(move |e| e.provision_keys(sk_for_engine, pk));
        MatchExperiment { engine, config, sk, loaded: 0 }
    }

    /// Loads subscriptions `[loaded, upto)` from `subs`.
    pub fn load_to(&mut self, subs: &[SubscriptionSpec], upto: usize) {
        let upto = upto.min(subs.len());
        for (i, sub) in subs.iter().enumerate().take(upto).skip(self.loaded) {
            self.engine
                .call(|e| e.register_plain(SubscriptionId(i as u64), ClientId(i as u64), sub))
                .expect("workload subscriptions compile");
        }
        self.loaded = upto;
    }

    /// Matches one publication, returning raw client ids (correctness
    /// checks; uses the plaintext path regardless of configuration).
    pub fn match_clients(&mut self, publication: &PublicationSpec) -> Vec<u64> {
        self.engine
            .call(|e| e.match_plain(publication))
            .expect("matching")
            .into_iter()
            .map(|c| c.0)
            .collect()
    }

    /// Measures average matching time over `publications`.
    pub fn measure(&mut self, publications: &[PublicationSpec]) -> MatchPoint {
        let mut rng = CryptoRng::from_seed(0xbeef);
        let encrypted: Vec<Vec<u8>> = if self.config.encrypted() {
            publications
                .iter()
                .map(|p| {
                    let plain = scbr::codec::encode_header(p);
                    AesCtr::encrypt_with_nonce(&self.sk, &mut rng, &plain)
                })
                .collect()
        } else {
            Vec::new()
        };
        // Warm up with one publication, then measure.
        if let Some(first) = publications.first() {
            let _ = self.engine.call(|e| e.match_plain(first));
        }
        self.engine.reset_counters();
        if self.config.encrypted() {
            for ct in &encrypted {
                self.engine.call(|e| e.match_encrypted(ct)).expect("encrypted matching");
            }
        } else {
            for p in publications {
                self.engine.call(|e| e.match_plain(p)).expect("plain matching");
            }
        }
        let stats: MemStats = self.engine.stats();
        MatchPoint {
            subs: self.loaded,
            matching_us: stats.elapsed_ns / publications.len().max(1) as f64 / 1_000.0,
            cache_miss_rate: stats.cache_miss_rate(),
            index_bytes: self.engine.engine().index().logical_bytes(),
        }
    }
}

/// ASPE-baseline driver mirroring [`MatchExperiment`].
pub struct AspeExperiment {
    authority: AspeAuthority,
    matcher: AspeMatcher,
    rng: CryptoRng,
    loaded: usize,
}

impl AspeExperiment {
    /// Builds the ASPE authority and matcher for a workload's attribute
    /// layout.
    pub fn new(platform: &SgxPlatform, workload: &Workload) -> Self {
        let mut rng = CryptoRng::from_seed(0xa59e);
        let mut numeric: Vec<String> = Vec::new();
        let mut eq: Vec<String> = Vec::new();
        for g in 0..workload.attr_multiplier() {
            let suffix = if g == 0 { String::new() } else { format!("_{}", g + 1) };
            for base in StockMarket::numeric_attributes() {
                numeric.push(format!("{base}{suffix}"));
            }
            eq.push(format!("symbol{suffix}"));
            eq.push(format!("day{suffix}"));
        }
        let numeric_refs: Vec<&str> = numeric.iter().map(|s| s.as_str()).collect();
        let eq_refs: Vec<&str> = eq.iter().map(|s| s.as_str()).collect();
        let authority = AspeAuthority::new(&numeric_refs, &eq_refs, &mut rng);
        let mem =
            sgx_sim::MemorySim::native(*platform.cache_config(), platform.cost_model().clone());
        AspeExperiment { authority, matcher: AspeMatcher::new(&mem), rng, loaded: 0 }
    }

    /// Loads subscriptions `[loaded, upto)`.
    pub fn load_to(&mut self, subs: &[SubscriptionSpec], upto: usize) {
        let upto = upto.min(subs.len());
        for (i, sub) in subs.iter().enumerate().take(upto).skip(self.loaded) {
            let enc = self
                .authority
                .encrypt_subscription(sub, &mut self.rng)
                .expect("workload subscriptions encryptable");
            self.matcher.insert(SubscriptionId(i as u64), ClientId(i as u64), enc);
        }
        self.loaded = upto;
    }

    /// Measures average matching time over `publications`.
    pub fn measure(&mut self, publications: &[PublicationSpec]) -> MatchPoint {
        let encrypted: Vec<_> = publications
            .iter()
            .map(|p| self.authority.encrypt_publication(p, &mut self.rng).expect("schema complete"))
            .collect();
        if let Some(first) = encrypted.first() {
            let _ = self.matcher.match_publication(first);
        }
        self.matcher.memory().reset_counters();
        for e in &encrypted {
            self.matcher.match_publication(e);
        }
        let stats = self.matcher.memory().stats();
        MatchPoint {
            subs: self.loaded,
            matching_us: stats.elapsed_ns / publications.len().max(1) as f64 / 1_000.0,
            cache_miss_rate: stats.cache_miss_rate(),
            index_bytes: self.matcher.logical_bytes(),
        }
    }
}

/// Formats a matching-time table row.
pub fn format_point(label: &str, p: &MatchPoint) -> String {
    format!(
        "{label:<10} subs={:<7} match={:>12.2} µs  miss={:>5.1}%  db={:>7.2} MB",
        p.subs,
        p.matching_us,
        p.cache_miss_rate * 100.0,
        p.index_bytes as f64 / (1024.0 * 1024.0)
    )
}

/// Prints a standard experiment header.
pub fn banner(figure: &str, description: &str, scale: &Scale) {
    println!("==============================================================");
    println!("SCBR reproduction — {figure}");
    println!("{description}");
    println!("scale={} (SCBR_SCALE=smoke|quick|full), virtual-clock measurements", scale.name);
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;
    use scbr_workloads::WorkloadName;

    #[test]
    fn smoke_scale_experiment_runs() {
        let scale = Scale::smoke();
        let market = StockMarket::generate(&scale.market, 1);
        let workload = Workload::from_name(WorkloadName::E100A1);
        let subs = workload.subscriptions(&market, 300, 2);
        let pubs = workload.publications(&market, 3, 3);
        let platform = SgxPlatform::for_testing(4);

        let mut inside = MatchExperiment::new(&platform, EngineConfig::InAes);
        let mut outside = MatchExperiment::new(&platform, EngineConfig::OutPlain);
        inside.load_to(&subs, 300);
        outside.load_to(&subs, 300);
        let pi = inside.measure(&pubs);
        let po = outside.measure(&pubs);
        assert!(pi.matching_us > 0.0);
        assert!(po.matching_us > 0.0);
        assert!(pi.matching_us > po.matching_us, "enclave + AES costs more");
        assert_eq!(pi.subs, 300);
    }

    #[test]
    fn aspe_experiment_runs_and_is_slower() {
        let scale = Scale::smoke();
        let market = StockMarket::generate(&scale.market, 1);
        let workload = Workload::from_name(WorkloadName::E100A1);
        let subs = workload.subscriptions(&market, 300, 2);
        let pubs = workload.publications(&market, 3, 3);
        let platform = SgxPlatform::for_testing(4);

        let mut aspe = AspeExperiment::new(&platform, &workload);
        aspe.load_to(&subs, 300);
        let pa = aspe.measure(&pubs);

        let mut scbr = MatchExperiment::new(&platform, EngineConfig::OutAes);
        scbr.load_to(&subs, 300);
        let ps = scbr.measure(&pubs);
        assert!(
            pa.matching_us > ps.matching_us,
            "aspe {} µs should exceed scbr {} µs",
            pa.matching_us,
            ps.matching_us
        );
    }

    #[test]
    fn scales_parse_from_env_default() {
        let s = Scale::from_env();
        assert!(!s.sub_counts.is_empty());
    }
}
