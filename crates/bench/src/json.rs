//! Machine-readable bench output: `BENCH_<artefact>.json` files.
//!
//! Every figure/table binary prints a human-readable table; set the
//! `SCBR_JSON` environment variable and it *additionally* writes the same
//! numbers as JSON, so the performance trajectory can be tracked across
//! PRs by diffing or plotting the files:
//!
//! * `SCBR_JSON=1` — write `BENCH_<artefact>.json` into the current
//!   directory;
//! * `SCBR_JSON=<dir>` — write into `<dir>` (created if missing).
//!
//! The emitted document is:
//!
//! ```json
//! {"artefact": "fig6", "schema_version": 1, "scale": "smoke", "rows": [{...}, ...]}
//! ```
//!
//! `schema_version` ([`SCHEMA_VERSION`]) is bumped whenever the document
//! envelope or a bench's row shape changes incompatibly, so downstream
//! trajectory tooling can refuse files it does not understand; CI greps
//! every emitted file for the field.
//!
//! No serde: rows are built with the tiny [`JsonObj`] builder, which
//! renders valid JSON for the flat numeric/string records benches produce.

use std::io::Write as _;
use std::path::PathBuf;

/// Version of the `BENCH_*.json` document envelope. Bump on incompatible
/// changes to the envelope or row shapes.
pub const SCHEMA_VERSION: u32 = 1;

/// A flat JSON object under construction (insertion order preserved).
#[derive(Debug, Clone, Default)]
pub struct JsonObj {
    fields: Vec<(String, String)>,
}

/// Escapes a string for a JSON literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl JsonObj {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObj::default()
    }

    /// Adds a float field (non-finite values render as `null`).
    #[must_use]
    pub fn num(mut self, key: &str, value: f64) -> Self {
        let rendered = if value.is_finite() { format!("{value}") } else { "null".to_owned() };
        self.fields.push((key.to_owned(), rendered));
        self
    }

    /// Adds an integer field.
    #[must_use]
    pub fn int(mut self, key: &str, value: u64) -> Self {
        self.fields.push((key.to_owned(), value.to_string()));
        self
    }

    /// Adds a string field.
    #[must_use]
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.fields.push((key.to_owned(), format!("\"{}\"", escape(value))));
        self
    }

    /// Renders the object as JSON text.
    pub fn render(&self) -> String {
        let body: Vec<String> =
            self.fields.iter().map(|(k, v)| format!("\"{}\": {v}", escape(k))).collect();
        format!("{{{}}}", body.join(", "))
    }
}

/// Where `BENCH_*.json` files go, per the `SCBR_JSON` environment
/// variable; `None` when emission is disabled.
pub fn output_dir() -> Option<PathBuf> {
    match std::env::var("SCBR_JSON") {
        Ok(v) if v.is_empty() || v == "0" => None,
        Ok(v) if v == "1" || v.eq_ignore_ascii_case("true") => Some(PathBuf::from(".")),
        Ok(v) => Some(PathBuf::from(v)),
        Err(_) => None,
    }
}

/// Renders the full `BENCH_*.json` document (the envelope carries the
/// artefact name, [`SCHEMA_VERSION`] and the run scale).
fn render_document(artefact: &str, scale: &str, rows: &[JsonObj]) -> String {
    let rendered: Vec<String> = rows.iter().map(|r| format!("  {}", r.render())).collect();
    format!(
        "{{\"artefact\": \"{}\", \"schema_version\": {SCHEMA_VERSION}, \"scale\": \"{}\", \
         \"rows\": [\n{}\n]}}\n",
        escape(artefact),
        escape(scale),
        rendered.join(",\n")
    )
}

/// Writes `BENCH_<artefact>.json` if `SCBR_JSON` enables emission.
/// Returns the written path, `None` when disabled. Failures to write are
/// reported on stderr but never fail the bench run.
pub fn emit(artefact: &str, scale: &str, rows: &[JsonObj]) -> Option<PathBuf> {
    let dir = output_dir()?;
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("BENCH json: cannot create {}: {e}", dir.display());
        return None;
    }
    let path = dir.join(format!("BENCH_{artefact}.json"));
    let doc = render_document(artefact, scale, rows);
    let result = std::fs::File::create(&path).and_then(|mut f| f.write_all(doc.as_bytes()));
    match result {
        Ok(()) => {
            eprintln!("BENCH json: wrote {}", path.display());
            Some(path)
        }
        Err(e) => {
            eprintln!("BENCH json: cannot write {}: {e}", path.display());
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_flat_object() {
        let obj = JsonObj::new()
            .str("name", "e80a1 \"zipf\"")
            .int("subs", 100)
            .num("us", 12.5)
            .num("bad", f64::NAN);
        assert_eq!(
            obj.render(),
            "{\"name\": \"e80a1 \\\"zipf\\\"\", \"subs\": 100, \"us\": 12.5, \"bad\": null}"
        );
    }

    #[test]
    fn escape_handles_controls() {
        assert_eq!(escape("a\nb\t\"c\\"), "a\\nb\\t\\\"c\\\\");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn document_carries_schema_version() {
        let doc = render_document("fig6", "smoke", &[JsonObj::new().int("x", 1)]);
        assert!(doc.contains("\"schema_version\": 1"));
        assert!(doc.starts_with("{\"artefact\": \"fig6\""));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }

    #[test]
    fn emitted_file_parses_as_json_shape() {
        // Poor man's JSON validation: balanced braces/brackets and the
        // expected skeleton (no serde available offline).
        let rows = [JsonObj::new().int("x", 1), JsonObj::new().int("x", 2)];
        let rendered: Vec<String> = rows.iter().map(|r| r.render()).collect();
        let doc = format!("{{\"rows\": [{}]}}", rendered.join(","));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }
}
