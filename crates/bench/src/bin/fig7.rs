//! Reproduces **Figure 7**: SCBR (inside/outside enclave, AES) against the
//! software-only ASPE baseline, per workload, with cache-miss rates.
//!
//! The paper's observations to look for:
//!
//! * ASPE is at least an order of magnitude slower everywhere and grows
//!   faster than any other strategy;
//! * the in/out-enclave curves drift apart after ~10 k subscriptions as
//!   the index outgrows the LLC (see the miss-rate column).
//!
//! ```text
//! cargo run --release -p scbr-bench --bin fig7            # all workloads
//! cargo run --release -p scbr-bench --bin fig7 e100a1     # one panel
//! ```

use scbr_bench::{banner, AspeExperiment, EngineConfig, MatchExperiment, Scale};
use scbr_workloads::{StockMarket, Workload};
use sgx_sim::SgxPlatform;

fn main() {
    let scale = Scale::from_env();
    banner(
        "Figure 7",
        "SCBR in/out enclave (AES) vs ASPE, per workload, with cache-miss rates",
        &scale,
    );
    let only: Option<String> = std::env::args().nth(1);
    let market = StockMarket::generate(&scale.market, 1);
    let platform = SgxPlatform::for_testing(9);
    let max = *scale.sub_counts.last().expect("non-empty counts");

    for workload in Workload::all() {
        if let Some(filter) = &only {
            if workload.name().as_str() != filter {
                continue;
            }
        }
        eprintln!("[{}] generating …", workload.name());
        let subs = workload.subscriptions(&market, max, 7);
        let pubs = workload.publications(&market, scale.pubs_per_point, 8);
        let aspe_pubs = workload.publications(&market, scale.aspe_pubs_per_point, 8);

        let mut inside = MatchExperiment::new(&platform, EngineConfig::InAes);
        let mut outside = MatchExperiment::new(&platform, EngineConfig::OutAes);
        let mut aspe = AspeExperiment::new(&platform, &workload);

        println!("\n=== {} ===", workload.name());
        println!(
            "{:<10} {:>14} {:>14} {:>14} {:>12}",
            "subs", "out-aspe (µs)", "in-aes (µs)", "out-aes (µs)", "miss (out)"
        );
        for &count in &scale.sub_counts {
            inside.load_to(&subs, count);
            outside.load_to(&subs, count);
            aspe.load_to(&subs, count);
            let pa = aspe.measure(&aspe_pubs);
            let pi = inside.measure(&pubs);
            let po = outside.measure(&pubs);
            println!(
                "{:<10} {:>14.1} {:>14.1} {:>14.1} {:>11.1}%",
                count,
                pa.matching_us,
                pi.matching_us,
                po.matching_us,
                po.cache_miss_rate * 100.0
            );
        }
    }
    println!("\nexpected (paper): out-aspe ≥ 10× out-aes; in-aes/out-aes gap opens past ~10k subs");
}
