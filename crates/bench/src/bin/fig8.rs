//! Reproduces **Figure 8**: the cost of exceeding the EPC.
//!
//! Registers up to 500 k `e80a1` subscriptions (plaintext) into identical
//! engines inside and outside the enclave, and reports — per bucket of
//! 5 000 registrations — the ratio of registration times and of page-fault
//! counts. The paper's observations to look for:
//!
//! * both ratios hover near 1 while the database fits the usable EPC
//!   (~93 MB of the 128 MB reservation);
//! * past the limit the enclave starts paging (EWB/ELD through the SGX
//!   driver): the time ratio jumps to an order of magnitude (paper: 18× at
//!   213 MB) and the fault-count ratio to ~10⁴ (enclave faults per 4 KiB
//!   swap, the native process once per transparent huge page).
//!
//! ```text
//! cargo run --release -p scbr-bench --bin fig8
//! ```

use scbr::engine::RouterEngine;
use scbr::ids::{ClientId, SubscriptionId};
use scbr::index::IndexKind;
use scbr_bench::json::{emit, JsonObj};
use scbr_bench::{banner, Scale};
use scbr_workloads::{StockMarket, Workload, WorkloadName};
use sgx_sim::SgxPlatform;

fn main() {
    let scale = Scale::from_env();
    banner(
        "Figure 8",
        "Registration-time and page-fault in/out ratios vs database size (e80a1, plaintext)",
        &scale,
    );
    let market = StockMarket::generate(&scale.market, 1);
    let workload = Workload::from_name(WorkloadName::E80A1);
    eprintln!("generating {} subscriptions …", scale.fig8_max_subs);
    let subs = workload.subscriptions(&market, scale.fig8_max_subs, 7);
    let platform = SgxPlatform::for_testing(9);

    let mut inside = RouterEngine::in_enclave(&platform, IndexKind::Poset).expect("launch");
    let mut outside = RouterEngine::outside(&platform, IndexKind::Poset);

    println!(
        "\n{:<10} {:>9} {:>12} {:>12} {:>12} {:>14} {:>14}",
        "subs", "db (MB)", "in µs/reg", "out µs/reg", "time ratio", "faults in", "fault ratio"
    );
    let epc_mb = platform.epc_config().usable_bytes as f64 / (1024.0 * 1024.0);
    let mut printed_epc_line = false;

    let mut rows: Vec<JsonObj> = Vec::new();
    let mut registered = 0usize;
    while registered < subs.len() {
        let next = (registered + scale.fig8_bucket).min(subs.len());
        inside.reset_counters();
        outside.reset_counters();
        for (i, sub) in subs.iter().enumerate().take(next).skip(registered) {
            let id = SubscriptionId(i as u64);
            let client = ClientId(i as u64);
            inside.call(|e| e.register_plain(id, client, sub)).expect("register");
            outside.call(|e| e.register_plain(id, client, sub)).expect("register");
        }
        let n = (next - registered) as f64;
        let in_stats = inside.stats();
        let out_stats = outside.stats();
        let in_us = in_stats.elapsed_ns / n / 1_000.0;
        let out_us = out_stats.elapsed_ns / n / 1_000.0;
        let in_faults = in_stats.page_faults();
        let out_faults = out_stats.page_faults().max(1);
        let db_mb = inside.engine().index().logical_bytes() as f64 / (1024.0 * 1024.0);
        if db_mb > epc_mb && !printed_epc_line {
            println!("{}  <-- usable EPC limit ({epc_mb:.0} MB)", "-".repeat(88));
            printed_epc_line = true;
        }
        println!(
            "{:<10} {:>9.1} {:>12.2} {:>12.2} {:>12.1} {:>14} {:>14.0}",
            next,
            db_mb,
            in_us,
            out_us,
            in_us / out_us,
            in_faults,
            in_faults as f64 / out_faults as f64
        );
        rows.push(
            JsonObj::new()
                .int("subs", next as u64)
                .num("db_mb", db_mb)
                .num("in_us_per_reg", in_us)
                .num("out_us_per_reg", out_us)
                .num("time_ratio", in_us / out_us)
                .int("in_faults", in_faults)
                .num("fault_ratio", in_faults as f64 / out_faults as f64),
        );
        registered = next;
    }
    emit("fig8", scale.name, &rows);
    println!("\nexpected (paper): ratios ≈ 1 below the EPC line; time ratio ≥ 10×,");
    println!("fault ratio ≈ 10³–10⁴ at the largest database sizes");
}
