//! Extension experiment: horizontal scaling of the router (the paper's
//! conclusion: the EPC limit "can be overcome through horizontal
//! scalability"; §3.4 sketches the StreamHub-style architecture).
//!
//! Registers a database larger than one enclave's usable EPC into 1, 2, 4
//! and 8 partitioned slices and reports registration time, page swaps and
//! fan-out matching latency (slowest slice).
//!
//! ```text
//! cargo run --release -p scbr-bench --bin scaleout
//! ```

use scbr::cluster::PartitionedRouter;
use scbr::ids::{ClientId, SubscriptionId};
use scbr::index::IndexKind;
use scbr_bench::json::{emit, JsonObj};
use scbr_bench::{banner, Scale};
use scbr_crypto::ctr::AesCtr;
use scbr_crypto::rng::CryptoRng;
use scbr_workloads::{StockMarket, Workload, WorkloadName};
use sgx_sim::{CacheConfig, CostModel, EpcConfig, SgxPlatform};

fn main() {
    let scale = Scale::from_env();
    banner(
        "Scale-out (extension)",
        "Partitioned router vs the EPC limit: one database, 1/2/4/8 slices",
        &scale,
    );
    // A reduced EPC keeps the experiment fast while preserving the
    // overflow ratio of Figure 8's end point (~2x the usable EPC).
    let epc = EpcConfig { total_bytes: 12 << 20, usable_bytes: 8 << 20, page_size: 4096 };
    let platform =
        SgxPlatform::with_config(9, CacheConfig::default(), epc, CostModel::default(), 512);
    let market = StockMarket::generate(&scale.market, 1);
    let workload = Workload::from_name(WorkloadName::E80A1);
    // ~17 MB of nodes vs 8 MB usable per enclave: one slice pages, four
    // slices fit.
    let n_subs = 40_000;
    eprintln!("generating {n_subs} subscriptions …");
    let subs = workload.subscriptions(&market, n_subs, 7);
    let pubs = workload.publications(&market, scale.pubs_per_point.max(5), 8);
    let sk = scbr_crypto::ctr::SymmetricKey::from_bytes([0x5c; 16]);
    let mut rng = CryptoRng::from_seed(11);
    let headers: Vec<Vec<u8>> = pubs
        .iter()
        .map(|p| AesCtr::encrypt_with_nonce(&sk, &mut rng, &scbr::codec::encode_header(p)))
        .collect();

    println!(
        "\n{:<8} {:>12} {:>12} {:>14} {:>16}",
        "slices", "reg µs/sub", "epc swaps", "match µs/pub", "slice db (MB)"
    );
    let mut rows: Vec<JsonObj> = Vec::new();
    for n in [1usize, 2, 4, 8] {
        let mut router =
            PartitionedRouter::in_enclaves(&platform, IndexKind::Poset, n).expect("launch");
        let pk = scbr_crypto::rsa::RsaPublicKey::from_parts(
            scbr_crypto::BigUint::from_u64(3233),
            scbr_crypto::BigUint::from_u64(17),
        );
        router.provision_keys(&sk, &pk);
        for (i, spec) in subs.iter().enumerate() {
            router
                .register_plain(SubscriptionId(i as u64), ClientId(i as u64), spec)
                .expect("register");
        }
        let reg_us = router.total_elapsed_ns() / subs.len() as f64 / 1_000.0;
        let swaps = router.total_epc_swaps();
        router.reset_counters();
        // Batch fan-out: every slice matches the whole set through one
        // enclave crossing per batch.
        router.match_encrypted_batch(&headers).expect("match");
        let match_us = router.parallel_elapsed_ns() / headers.len() as f64 / 1_000.0;
        let slice_mb =
            router.with_slice(0, |s| s.engine().index().logical_bytes()) as f64 / (1024.0 * 1024.0);
        println!("{:<8} {:>12.2} {:>12} {:>14.1} {:>16.2}", n, reg_us, swaps, match_us, slice_mb);
        rows.push(
            JsonObj::new()
                .int("slices", n as u64)
                .int("subscriptions", subs.len() as u64)
                .int("publications", headers.len() as u64)
                .num("registration_us_per_sub", reg_us)
                .int("epc_swaps", swaps)
                .num("matching_us_per_pub", match_us)
                .num("slice_db_mb", slice_mb)
                .num("occupancy_skew", router.occupancy_skew()),
        );
    }
    println!("\nexpected: swaps vanish once the per-slice index fits the usable EPC;");
    println!("fan-out matching latency (slowest slice) improves with slices");
    emit("scaleout", scale.name, &rows);
}
