//! Million-subscriber hot path (extension): **live subscriptions ×
//! publish rate × index kind** over the zero-allocation batch pipeline.
//!
//! The paper's evaluation stops at 100 k subscriptions (Figure 8 loads
//! 500 k for registration cost only). This run pushes steady-state
//! *matching* to one million live subscriptions under the push-feed
//! workload ([`scbr_workloads::pushfeed`]) and measures three things:
//!
//! 1. **Arena vs legacy poset** — identical replayed workload against
//!    [`IndexKind::Poset`] (arena, SoA node storage) and
//!    [`IndexKind::PosetLegacy`] (the frozen pre-arena baseline), at
//!    every subscription count; `index_kind` is recorded per JSON row.
//! 2. **Batch amortisation** — per-batch µs across publish-rate
//!    (batch-size) steps through [`RouterEngine::match_batch_into`],
//!    which reuses one flat [`BatchMatches`] and the engine's internal
//!    scratch: zero steady-state heap allocation.
//! 3. **Bloom-gated ASPE** — the same feed through the encrypted
//!    matcher, reporting the Bloom pre-filter's skip rate: the share of
//!    live subscriptions whose O(d²) quadratic forms were never
//!    evaluated.
//!
//! ```text
//! cargo run --release -p scbr-bench --bin million
//! SCBR_JSON=1 SCBR_SCALE=full cargo run --release -p scbr-bench --bin million
//! ```

use std::time::Instant;

use scbr::engine::{BatchMatches, RouterEngine};
use scbr::index::IndexKind;
use scbr_aspe::{AspeAuthority, AspeMatcher};
use scbr_bench::json::{emit, JsonObj};
use scbr_bench::{banner, Scale};
use scbr_crypto::ctr::AesCtr;
use scbr_crypto::rng::CryptoRng;
use scbr_telemetry::MetricsRegistry;
use scbr_workloads::{PushFeed, PushFeedConfig};
use sgx_sim::SgxPlatform;

fn main() {
    let scale = Scale::from_env();
    banner(
        "Million-subscriber hot path (extension)",
        "Push-feed fan-out: live subs × publish rate × index kind, zero-alloc batches",
        &scale,
    );
    let (sub_counts, batches, publications): (&[usize], &[usize], usize) = match scale.name {
        "smoke" => (&[10_000, 50_000], &[8, 64], 64),
        "full" => (&[100_000, 250_000, 500_000, 1_000_000], &[8, 64, 256], 256),
        _ => (&[100_000, 250_000, 1_000_000], &[8, 64, 256], 256),
    };
    let platform = SgxPlatform::for_testing(17);
    let sk = scbr_crypto::ctr::SymmetricKey::from_bytes([0x5c; 16]);
    let pk = scbr_crypto::rsa::RsaPublicKey::from_parts(
        scbr_crypto::BigUint::from_u64(3233),
        scbr_crypto::BigUint::from_u64(17),
    );

    let mut rows: Vec<JsonObj> = Vec::new();
    println!(
        "\n{:<8} {:<10} {:<6} {:>12} {:>12} {:>12} {:>10} {:>8}",
        "kind", "subs", "batch", "virt µs/msg", "wall µs/msg", "k msg/s", "match/msg", "db MB"
    );
    for &n_subs in sub_counts {
        let feed = PushFeed::new(PushFeedConfig::with_total_subscriptions(n_subs));
        let subs = feed.subscriptions(7);
        let pubs = feed.publications(publications, 8);
        let mut rng = CryptoRng::from_seed(11);
        let headers: Vec<Vec<u8>> = pubs
            .iter()
            .map(|p| AesCtr::encrypt_with_nonce(&sk, &mut rng, &scbr::codec::encode_header(p)))
            .collect();

        for kind in [IndexKind::Poset, IndexKind::PosetLegacy] {
            let kind_label = match kind {
                IndexKind::Poset => "arena",
                IndexKind::PosetLegacy => "legacy",
                _ => unreachable!(),
            };
            let mut engine = RouterEngine::outside(&platform, kind);
            let (sk_c, pk_c) = (sk.clone(), pk.clone());
            engine.call(move |e| e.provision_keys(sk_c, pk_c));
            let reg_start = Instant::now();
            for (id, client, spec) in &subs {
                engine.call(|e| e.register_plain(*id, *client, spec)).expect("register");
            }
            let reg_s = reg_start.elapsed().as_secs_f64();
            let index_bytes = engine.engine().index().logical_bytes();
            let node_count = engine.engine().index().node_count() as u64;

            let mut out = BatchMatches::new();
            // Warm the scratch buffers: steady state starts after the
            // first batch has sized every reusable vector.
            engine.match_batch_into(&headers, &mut out);
            let matched: usize = out.total_clients();
            for &batch in batches {
                engine.reset_counters();
                let wall_start = Instant::now();
                for chunk in headers.chunks(batch) {
                    engine.match_batch_into(chunk, &mut out);
                }
                let wall_us = wall_start.elapsed().as_secs_f64() * 1e6 / headers.len() as f64;
                let virt_us = engine.stats().elapsed_ns / headers.len() as f64 / 1_000.0;
                let match_per_msg = matched as f64 / headers.len() as f64;
                println!(
                    "{:<8} {:<10} {:<6} {:>12.2} {:>12.2} {:>12.1} {:>10.0} {:>8.1}",
                    kind_label,
                    n_subs,
                    batch,
                    virt_us,
                    wall_us,
                    1_000.0 / wall_us,
                    match_per_msg,
                    index_bytes as f64 / (1024.0 * 1024.0)
                );
                rows.push(
                    JsonObj::new()
                        .str("segment", "index_sweep")
                        .str("index_kind", kind_label)
                        .int("subscriptions", n_subs as u64)
                        .int("batch", batch as u64)
                        .int("publications", headers.len() as u64)
                        .num("virtual_us_per_msg", virt_us)
                        .num("wall_us_per_msg", wall_us)
                        .num("throughput_wall_msg_per_s", 1e6 / wall_us)
                        .num("throughput_virtual_msg_per_s", 1e6 / virt_us)
                        .num("matched_per_msg", match_per_msg)
                        .num("registration_s", reg_s)
                        .int("index_bytes", index_bytes)
                        .int("node_count", node_count),
                );
            }
        }
    }

    // Allocation discipline: the flat batch path vs the Vec<Vec<_>> path
    // on the largest arena configuration just measured.
    let n_subs = *sub_counts.last().expect("non-empty sweep");
    {
        let feed = PushFeed::new(PushFeedConfig::with_total_subscriptions(n_subs));
        let subs = feed.subscriptions(7);
        let pubs = feed.publications(publications, 8);
        let mut rng = CryptoRng::from_seed(11);
        let headers: Vec<Vec<u8>> = pubs
            .iter()
            .map(|p| AesCtr::encrypt_with_nonce(&sk, &mut rng, &scbr::codec::encode_header(p)))
            .collect();
        let mut engine = RouterEngine::outside(&platform, IndexKind::Poset);
        let (sk_c, pk_c) = (sk.clone(), pk.clone());
        engine.call(move |e| e.provision_keys(sk_c, pk_c));
        for (id, client, spec) in &subs {
            engine.call(|e| e.register_plain(*id, *client, spec)).expect("register");
        }
        let mut out = BatchMatches::new();
        engine.match_batch_into(&headers, &mut out);
        let flat_start = Instant::now();
        engine.match_batch_into(&headers, &mut out);
        let flat_us = flat_start.elapsed().as_secs_f64() * 1e6 / headers.len() as f64;
        let vec_start = Instant::now();
        let nested = engine.match_batch(&headers).expect("vec batch");
        let vec_us = vec_start.elapsed().as_secs_f64() * 1e6 / headers.len() as f64;
        assert_eq!(
            nested.iter().map(Vec::len).sum::<usize>(),
            out.total_clients(),
            "flat and nested batch paths agree"
        );
        println!(
            "\nallocation discipline at {n_subs} subs: flat reuse {flat_us:.2} µs/msg \
             vs Vec<Vec<_>> {vec_us:.2} µs/msg"
        );
        rows.push(
            JsonObj::new()
                .str("segment", "alloc_discipline")
                .str("index_kind", "arena")
                .int("subscriptions", n_subs as u64)
                .int("publications", headers.len() as u64)
                .num("flat_reuse_wall_us_per_msg", flat_us)
                .num("nested_alloc_wall_us_per_msg", vec_us),
        );
    }

    // Bloom-gated ASPE segment: the encrypted matcher over the same
    // feed shape (ASPE is quadratic per subscription, so the database
    // stays small — the point is the gate's skip rate, not scale).
    {
        let (aspe_subs, aspe_pubs) = match scale.name {
            "smoke" => (500usize, 8usize),
            "full" => (5_000, 32),
            _ => (2_000, 16),
        };
        let feed = PushFeed::new(PushFeedConfig::small());
        let subs = feed.subscriptions(7);
        let pubs = feed.publications(aspe_pubs, 8);
        let mut rng = CryptoRng::from_seed(0xa59e);
        let authority = AspeAuthority::new(&["priority", "sender", "len"], &["topic"], &mut rng);
        let mem =
            sgx_sim::MemorySim::native(*platform.cache_config(), platform.cost_model().clone());
        let mut matcher = AspeMatcher::new(&mem);
        for (id, client, spec) in subs.iter().take(aspe_subs) {
            let enc = authority.encrypt_subscription(spec, &mut rng).expect("encryptable");
            matcher.insert(*id, *client, enc);
        }
        let encrypted: Vec<_> = pubs
            .iter()
            .map(|p| authority.encrypt_publication(p, &mut rng).expect("schema complete"))
            .collect();
        // The measurement window goes through the metrics registry: the
        // gate's uniform `snapshot()` export is absorbed before and after
        // the run, and `Snapshot::delta` isolates this phase — no manual
        // counter reset needed.
        let mut registry = MetricsRegistry::new();
        registry.absorb("gate", &matcher.bloom_stats().snapshot());
        let before = registry.snapshot();
        let mut matched = 0usize;
        for e in &encrypted {
            matched += matcher.match_publication(e).len();
        }
        let mut registry = MetricsRegistry::new();
        registry.absorb("gate", &matcher.bloom_stats().snapshot());
        let delta = registry.snapshot().delta(&before);
        let checked = delta.get("gate.bloom_checked").unwrap_or(0);
        let skipped = delta.get("gate.bloom_skipped").unwrap_or(0);
        let forms = delta.get("gate.forms_evaluated").unwrap_or(0);
        let skip_rate = if checked == 0 { 0.0 } else { skipped as f64 / checked as f64 };
        println!(
            "\nbloom gate over {aspe_subs} ASPE subs × {aspe_pubs} pubs: \
             checked={checked} skipped={skipped} forms={forms} \
             skip-rate={:.1}% matched={matched}",
            skip_rate * 100.0
        );
        rows.push(
            JsonObj::new()
                .str("segment", "bloom_gate")
                .int("subscriptions", aspe_subs as u64)
                .int("publications", aspe_pubs as u64)
                .int("bloom_checked", checked)
                .int("bloom_skipped", skipped)
                .int("forms_evaluated", forms)
                .num("bloom_skip_rate", skip_rate)
                .int("matched", matched as u64),
        );
    }

    println!(
        "\nexpected: the arena index beats the legacy poset on both clocks at \
         every size (SoA node walks touch fewer lines, no per-insert clones), \
         the flat batch path beats the allocating path, and the Bloom gate \
         skips the large majority of quadratic forms under Zipf topics"
    );
    emit("million", scale.name, &rows);
}
