//! Batching ablation (extension): **batch size × slice count** over the
//! batch-first pipeline.
//!
//! The paper's cost model is dominated by enclave transitions: every
//! publication matched through the call gate pays the fixed EENTER/EEXIT
//! cost, and its future work proposes "message batching … to reduce the
//! frequency of enclave enters/exits". This run measures that amortisation
//! directly — the simulator counts transitions per batch, so the measured
//! transition count scales as `slices / batch_size` — and sweeps it
//! against a [`scbr::cluster::PartitionedRouter`] whose worker threads
//! genuinely run the slices concurrently (wall-clock µs/msg is
//! host-measured dispatch→merge time).
//!
//! The workload is Zipf-skewed (`e80a1zz100`) and sized so a single
//! slice's index overflows the (reduced) usable EPC: one slice pays page
//! swaps, partitioned slices fit. For each slice count the run reports the
//! **knee**: the smallest batch size past which per-message virtual time
//! stops improving by more than 5 % — where the amortised transition cost
//! has flattened into the matching cost.
//!
//! ```text
//! cargo run --release -p scbr-bench --bin batching
//! SCBR_JSON=1 SCBR_SCALE=smoke cargo run --release -p scbr-bench --bin batching
//! ```

use scbr::cluster::PartitionedRouter;
use scbr::ids::{ClientId, SubscriptionId};
use scbr::index::IndexKind;
use scbr_bench::json::{emit, JsonObj};
use scbr_bench::{banner, Scale};
use scbr_crypto::ctr::AesCtr;
use scbr_crypto::rng::CryptoRng;
use scbr_workloads::{StockMarket, Workload, WorkloadName};
use sgx_sim::{CacheConfig, CostModel, EpcConfig, SgxPlatform};

const BATCHES: [usize; 8] = [1, 2, 4, 8, 16, 32, 64, 128];
const SLICES: [usize; 3] = [1, 2, 4];
/// Publications per configuration (a multiple of every batch size).
const PUBLICATIONS: usize = 256;

fn main() {
    let scale = Scale::from_env();
    banner(
        "Batching ablation (extension)",
        "Amortised enclave transitions: batch size × slice count, Zipf workload vs a tight EPC",
        &scale,
    );
    // A reduced EPC so the single-slice index overflows usable EPC at
    // every scale while two or more slices fit (the subscription node
    // stride is ~432 B, but the Zipf workload shares nodes heavily).
    let (n_subs, usable) = match scale.name {
        "smoke" => (12_000usize, 5usize << 19), // ~3.2 MB index vs 2.5 MB EPC
        "full" => (80_000, 10 << 20),
        _ => (40_000, 6 << 20),
    };
    let epc = EpcConfig { total_bytes: 2 * usable, usable_bytes: usable, page_size: 4096 };
    let platform =
        SgxPlatform::with_config(17, CacheConfig::default(), epc, CostModel::default(), 512);
    let market = StockMarket::generate(&scale.market, 1);
    let workload = Workload::from_name(WorkloadName::E80A1Zz100);
    eprintln!("generating {n_subs} Zipf subscriptions …");
    let subs = workload.subscriptions(&market, n_subs, 7);
    let pubs = workload.publications(&market, PUBLICATIONS, 8);
    let sk = scbr_crypto::ctr::SymmetricKey::from_bytes([0x5c; 16]);
    let pk = scbr_crypto::rsa::RsaPublicKey::from_parts(
        scbr_crypto::BigUint::from_u64(3233),
        scbr_crypto::BigUint::from_u64(17),
    );
    let mut rng = CryptoRng::from_seed(11);
    let headers: Vec<Vec<u8>> = pubs
        .iter()
        .map(|p| AesCtr::encrypt_with_nonce(&sk, &mut rng, &scbr::codec::encode_header(p)))
        .collect();

    println!(
        "\n{:<7} {:<6} {:>8} {:>10} {:>14} {:>12} {:>10}",
        "slices", "batch", "ecalls", "trans/msg", "virt µs/msg", "wall µs/msg", "epc swaps"
    );
    let mut rows: Vec<JsonObj> = Vec::new();
    let mut wall_at_32 = Vec::new();
    for &n_slices in &SLICES {
        let mut router =
            PartitionedRouter::in_enclaves(&platform, IndexKind::Poset, n_slices).expect("launch");
        router.provision_keys(&sk, &pk);
        for (i, spec) in subs.iter().enumerate() {
            router
                .register_plain(SubscriptionId(i as u64), ClientId(i as u64), spec)
                .expect("register");
        }
        // Warm up caches/EPC residency before the measured sweeps.
        router.match_encrypted_batch(&headers[..32.min(headers.len())]).expect("warmup");

        let mut prev_virt: Option<f64> = None;
        let mut knee: Option<usize> = None;
        for &batch in &BATCHES {
            router.reset_counters();
            for chunk in headers.chunks(batch) {
                router.match_encrypted_batch(chunk).expect("match");
            }
            let n_msgs = headers.len() as f64;
            let ecalls = router.total_ecalls();
            let trans_per_msg = ecalls as f64 / n_msgs;
            let virt_us = router.parallel_elapsed_ns() / n_msgs / 1_000.0;
            let wall_us = router.fanout_wall_ns() as f64 / n_msgs / 1_000.0;
            let swaps = router.total_epc_swaps();
            println!(
                "{:<7} {:<6} {:>8} {:>10.3} {:>14.2} {:>12.2} {:>10}",
                n_slices, batch, ecalls, trans_per_msg, virt_us, wall_us, swaps
            );
            rows.push(
                JsonObj::new()
                    .int("slices", n_slices as u64)
                    .int("batch", batch as u64)
                    .int("publications", headers.len() as u64)
                    .int("subscriptions", n_subs as u64)
                    .int("ecalls", ecalls)
                    .int("ocalls", router.total_ocalls())
                    .num("transitions_per_msg", trans_per_msg)
                    .num("virtual_us_per_msg", virt_us)
                    .num("throughput_virtual_msg_per_s", 1_000_000.0 / virt_us)
                    .num("wall_us_per_msg", wall_us)
                    .int("epc_swaps", swaps)
                    .num("occupancy_skew", router.occupancy_skew()),
            );
            if batch == 32 {
                wall_at_32.push((n_slices, virt_us, wall_us));
            }
            if let (Some(prev), None) = (prev_virt, knee) {
                if (prev - virt_us) / prev < 0.05 {
                    knee = Some(batch);
                }
            }
            prev_virt = Some(virt_us);
        }
        let occupancy = router.slice_stats();
        let per_slice_mb =
            occupancy.first().map(|s| s.index_bytes as f64 / (1024.0 * 1024.0)).unwrap_or(0.0);
        match knee {
            Some(b) => println!(
                "  -> knee at batch {b}: transition amortisation flattened \
                 (per-slice db {per_slice_mb:.1} MB, skew {:.2})",
                router.occupancy_skew()
            ),
            None => println!("  -> no knee up to batch 128 (still transition-bound)"),
        }
    }

    println!("\nwall-clock fan-out at batch 32 (worker threads, host-measured):");
    for (n_slices, virt_us, wall_us) in &wall_at_32 {
        println!("  {n_slices} slice(s): {virt_us:>8.2} virt µs/msg  {wall_us:>8.2} wall µs/msg");
    }
    println!(
        "\nexpected: measured transitions/msg = slices/batch (the 1/batch_size \
         amortisation); the EPC-thrashing single slice loses to partitioned \
         slices on both clocks once batches stop dominating"
    );
    emit("batching", scale.name, &rows);
}
