//! Reproduces **Table 1**: the nine workload descriptions, measured from
//! the generated datasets rather than asserted.
//!
//! ```text
//! cargo run --release -p scbr-bench --bin table1
//! ```

use scbr_bench::json::{emit, JsonObj};
use scbr_bench::{banner, Scale};
use scbr_workloads::stats::WorkloadStats;
use scbr_workloads::{StockMarket, Workload};

fn main() {
    let scale = Scale::from_env();
    banner(
        "Table 1",
        "Workload descriptions: equality-predicate distribution, attribute \
         multiplier and value selection, measured on generated data",
        &scale,
    );
    let market = StockMarket::generate(&scale.market, 1);
    println!(
        "market: {} symbols × {} days = {} quotes\n",
        market.symbols().len(),
        market.config().days,
        market.len()
    );
    let n_subs = match scale.name {
        "smoke" => 2_000,
        _ => 20_000,
    };
    println!("{:<12} {:<30} shape (measured)", "workload", "equality distribution");
    println!("{}", "-".repeat(100));
    let mut rows: Vec<JsonObj> = Vec::new();
    for workload in Workload::all() {
        let stats = WorkloadStats::compute(&workload, &market, n_subs, 200, 42);
        println!("{}", stats.row());
        let mut row = JsonObj::new()
            .str("workload", &stats.name)
            .int("subscriptions", stats.subscriptions as u64)
            .num("mean_predicates", stats.mean_predicates)
            .int("distinct_attributes", stats.distinct_attributes as u64)
            .num("mean_publication_attrs", stats.mean_publication_attrs)
            .num("top_symbol_share", stats.top_symbol_share);
        for (eqs, share) in &stats.eq_histogram {
            row = row.num(&format!("eq{eqs}_share"), *share);
        }
        rows.push(row);
    }
    println!();
    emit("table1", scale.name, &rows);
    println!("Paper's Table 1 for comparison:");
    println!("  e100a1      100%:1eq    8–11 attrs   uniform");
    println!("  e80a1       20%:0 80%:1 8–11 attrs   uniform");
    println!("  e80a2       same        2× attrs     uniform");
    println!("  e80a4       same        4× attrs     uniform");
    println!("  extsub2     15/60/15/10%:0–3eq 2×    uniform");
    println!("  extsub4     same        4× attrs     uniform");
    println!("  e80a1z100   20%:0 80%:1 8–11 attrs   Zipf on symbol");
    println!("  e80a1zz100  same        8–11 attrs   Zipf on all attributes");
    println!("  e100a1zz100 100%:1eq    8–11 attrs   Zipf on all attributes");
}
