//! Overlay extension experiment: **hops × routers × subscribers** through
//! the attested broker fabric.
//!
//! The paper's §3.4 sketches a network of routing enclaves; this run
//! measures what the overlay adds and what covering saves:
//!
//! * **propagation** — subscriptions registered at one edge of a broker
//!   chain, propagated covering-pruned vs flooded: link forwards, pruned
//!   count, and total index entries across the fabric (upstream state);
//! * **multi-hop matching** — a publication batch injected at the far
//!   edge: enclave crossings per hop (the batch-first pipeline keeps this
//!   at ~1 per broker per batch) and the virtual-time critical path per
//!   message.
//!
//! The workload is the paper's Zipf-skewed `e80a1zz100`: skew produces
//! repeated and covered subscriptions, exactly what covering-based
//! propagation exploits.
//!
//! ```text
//! cargo run --release -p scbr-bench --bin overlay
//! SCBR_JSON=1 SCBR_SCALE=smoke cargo run --release -p scbr-bench --bin overlay
//! ```

use scbr::ids::ClientId;
use scbr_bench::json::{emit, JsonObj};
use scbr_bench::{banner, Scale};
use scbr_overlay::fabric::{FabricConfig, OverlayFabric};
use scbr_overlay::{Propagation, Topology};
use scbr_workloads::{StockMarket, Workload, WorkloadName};

fn main() {
    let scale = Scale::from_env();
    banner(
        "Overlay fabric (extension)",
        "Attested broker chains: covering-pruned propagation and multi-hop batch forwarding",
        &scale,
    );
    let (router_counts, n_subs, n_pubs): (&[usize], usize, usize) = match scale.name {
        "smoke" => (&[2, 4], 48, 16),
        "full" => (&[2, 4, 8, 12], 2_000, 256),
        _ => (&[2, 4, 8], 400, 64),
    };
    let market = StockMarket::generate(&scale.market, 1);
    let workload = Workload::from_name(WorkloadName::E80A1Zz100);
    eprintln!("generating {n_subs} Zipf subscriptions + {n_pubs} publications …");
    let subs = workload.subscriptions(&market, n_subs, 7);
    let pubs = workload.publications(&market, n_pubs, 8);

    println!(
        "\n{:<8} {:<6} {:<9} {:>9} {:>8} {:>8} {:>11} {:>10} {:>12} {:>10}",
        "routers",
        "hops",
        "mode",
        "fwd subs",
        "pruned",
        "entries",
        "pub ecalls",
        "ecall/brkr",
        "virt µs/msg",
        "delivered"
    );
    let mut rows: Vec<JsonObj> = Vec::new();
    for &routers in router_counts {
        let hops = routers - 1;
        for propagation in [Propagation::CoveringPruned, Propagation::Flood] {
            let mode = match propagation {
                Propagation::CoveringPruned => "pruned",
                Propagation::Flood => "flooded",
            };
            let config = FabricConfig {
                seed: 11,
                index: scbr::index::IndexKind::Poset,
                propagation,
                ..FabricConfig::attested(11)
            };
            let mut fabric =
                OverlayFabric::build(Topology::line(routers), config).expect("fabric build");
            // All subscribers at router 0; publications enter at the far
            // end, so every delivery crosses the full chain.
            for (i, spec) in subs.iter().enumerate() {
                fabric.subscribe(0, ClientId(i as u64), spec).expect("subscribe");
            }
            let forwarded = fabric.total_forwarded();
            let pruned = fabric.total_pruned();
            let entries = fabric.total_index_entries();

            fabric.reset_counters();
            let deliveries = fabric.publish(routers - 1, &pubs).expect("publish");
            let pub_ecalls = fabric.total_ecalls();
            let ecalls_per_broker = pub_ecalls as f64 / routers as f64;
            let virt_us_per_msg = fabric.max_elapsed_ns() / n_pubs as f64 / 1_000.0;

            println!(
                "{:<8} {:<6} {:<9} {:>9} {:>8} {:>8} {:>11} {:>10.2} {:>12.2} {:>10}",
                routers,
                hops,
                mode,
                forwarded,
                pruned,
                entries,
                pub_ecalls,
                ecalls_per_broker,
                virt_us_per_msg,
                deliveries.len()
            );
            rows.push(
                JsonObj::new()
                    .int("routers", routers as u64)
                    .int("hops", hops as u64)
                    .str("propagation", mode)
                    .int("subscribers", n_subs as u64)
                    .int("publications", n_pubs as u64)
                    .int("forwarded_subs", forwarded)
                    .int("pruned_subs", pruned)
                    .int("index_entries", entries as u64)
                    .int("publish_ecalls", pub_ecalls)
                    .num("ecalls_per_broker", ecalls_per_broker)
                    .num("virtual_us_per_msg", virt_us_per_msg)
                    .int("deliveries", deliveries.len() as u64),
            );
        }
    }
    println!(
        "\nexpected: pruned mode forwards a fraction of the flooded subscription \
         traffic (Zipf skew ⇒ heavy covering) at identical delivery counts; \
         publish ecalls stay ≈ 1 per broker per batch, so multi-hop batches keep \
         the 1/batch_size transition amortisation at every hop"
    );
    emit("overlay", scale.name, &rows);

    // ---- churn mode: the full lifecycle as a sweep ---------------------
    //
    // Subscribe the whole Zipf population at one edge, then unsubscribe
    // it again in arrival order. Removing early (broad, heavily covering)
    // subscriptions while later (covered) ones are still live forces the
    // uncovering rule at every hop — this measures what subscription
    // churn costs the overlay in re-propagation traffic, and checks that
    // the fabric drains to zero state.
    println!(
        "\n{:<8} {:<6} {:>9} {:>8} {:>9} {:>9} {:>10} {:>12}",
        "routers", "hops", "fwd tot", "pruned", "removed", "uncovered", "leftover", "virt ms tot"
    );
    let mut churn_rows: Vec<JsonObj> = Vec::new();
    for &routers in router_counts {
        let hops = routers - 1;
        let config = FabricConfig {
            seed: 13,
            index: scbr::index::IndexKind::Poset,
            propagation: Propagation::CoveringPruned,
            ..FabricConfig::attested(13)
        };
        let mut fabric =
            OverlayFabric::build(Topology::line(routers), config).expect("fabric build");
        fabric.reset_counters();
        let mut ids = Vec::with_capacity(subs.len());
        for (i, spec) in subs.iter().enumerate() {
            ids.push(fabric.subscribe(0, ClientId(i as u64), spec).expect("subscribe"));
        }
        for id in &ids {
            fabric.unsubscribe(*id).expect("unsubscribe");
        }
        let forwarded_total = fabric.total_forwarded_cumulative();
        let pruned = fabric.total_pruned();
        let removed = fabric.total_removed();
        let uncovered = fabric.total_uncovered();
        let leftover = fabric.total_index_entries() as u64 + fabric.total_forwarded();
        let virt_ms = fabric.max_elapsed_ns() / 1_000_000.0;
        println!(
            "{:<8} {:<6} {:>9} {:>8} {:>9} {:>9} {:>10} {:>12.2}",
            routers, hops, forwarded_total, pruned, removed, uncovered, leftover, virt_ms
        );
        churn_rows.push(
            JsonObj::new()
                .int("routers", routers as u64)
                .int("hops", hops as u64)
                .int("subscribers", n_subs as u64)
                .int("forwarded_total", forwarded_total)
                .int("pruned_subs", pruned)
                .int("removed_rows", removed)
                .int("uncovered_promotions", uncovered)
                .int("leftover_state", leftover)
                .num("virtual_ms_total", virt_ms),
        );
    }
    println!(
        "\nexpected: forwarded_total == removed (every row churned away), leftover == 0 \
         (no leaked index entries or table rows), and uncovered grows with hop count — \
         the price of covering-pruned propagation under removal"
    );
    emit("overlay_churn", scale.name, &churn_rows);

    // ---- failover mode: kill k of n brokers mid-churn ------------------
    //
    // Subscribe a (bounded) Zipf population at one edge, then crash
    // middle brokers one at a time. While each victim is down, churn
    // continues at the edge — removals and additions whose frames toward
    // the victim are dropped on the floor. The restart then has to do
    // real reconciliation work: sealed restore, link re-keying,
    // neighbour replay, stale drops. The measure is how much recovery
    // traffic that costs versus naively re-propagating the entire
    // subscription population through the tree.
    println!(
        "\n{:<8} {:<8} {:>9} {:>9} {:>9} {:>7} {:>11} {:>12} {:>10}",
        "routers",
        "victims",
        "restored",
        "replayed",
        "stale",
        "gaps",
        "rec frames",
        "full repropg",
        "delivered"
    );
    let n_failover = n_subs.min(128);
    let mut failover_rows: Vec<JsonObj> = Vec::new();
    for &routers in router_counts {
        let config = FabricConfig {
            seed: 17,
            index: scbr::index::IndexKind::Poset,
            propagation: Propagation::CoveringPruned,
            ..FabricConfig::attested(17)
        };
        let mut fabric =
            OverlayFabric::build(Topology::line(routers), config).expect("fabric build");
        let mut ids = Vec::with_capacity(n_failover);
        for (i, spec) in subs.iter().take(n_failover).enumerate() {
            ids.push(fabric.subscribe(0, ClientId(i as u64), spec).expect("subscribe"));
        }
        // What a full re-propagation of the live population would put on
        // the wire: every covering-surviving forward, again.
        let full_repropagation = fabric.total_forwarded_cumulative();

        let victims: Vec<usize> = (1..routers).step_by(2).take((routers / 3).max(1)).collect();
        let (mut restored, mut replayed, mut stale) = (0u64, 0u64, 0u64);
        let mut recovery_frames = 0u64;
        let mut churn_ops = 0u64;
        let mut next_client = n_failover as u64;
        for &victim in &victims {
            fabric.crash(victim).expect("crash");
            // Mid-outage churn at the (alive) edge: retire an early
            // subscription, admit a fresh one.
            for _ in 0..4 {
                if let Some(id) = ids.first().copied() {
                    ids.remove(0);
                    fabric.unsubscribe(id).expect("unsubscribe during outage");
                    churn_ops += 1;
                }
                let spec = &subs[(next_client as usize) % n_failover.max(1)];
                ids.push(
                    fabric
                        .subscribe(0, ClientId(next_client), spec)
                        .expect("subscribe during outage"),
                );
                next_client += 1;
                churn_ops += 1;
            }
            let report = fabric.restart(victim).expect("restart");
            restored += report.restored as u64;
            replayed += report.replayed as u64;
            stale += report.dropped_stale as u64;
            recovery_frames += report.recovery_frames;
        }
        // Post-failover sanity: the overlay still delivers.
        fabric.reset_counters();
        let deliveries = fabric.publish(routers - 1, &pubs).expect("publish");
        println!(
            "{:<8} {:<8} {:>9} {:>9} {:>9} {:>7} {:>11} {:>12} {:>10}",
            routers,
            victims.len(),
            restored,
            replayed,
            stale,
            fabric.total_gaps(),
            recovery_frames,
            full_repropagation,
            deliveries.len()
        );
        failover_rows.push(
            JsonObj::new()
                .int("routers", routers as u64)
                .int("hops", (routers - 1) as u64)
                .int("subscribers", n_failover as u64)
                .int("victims", victims.len() as u64)
                .int("churn_ops_during_outage", churn_ops)
                .int("restored_subs", restored)
                .int("replayed_envelopes", replayed)
                .int("dropped_stale", stale)
                .int("recovery_frames", recovery_frames)
                .int("full_repropagation_frames", full_repropagation)
                .int("deliveries", deliveries.len() as u64),
        );
    }
    println!(
        "\nexpected: recovery frames stay proportional to the victims' incident-link \
         interest (replayed envelopes + handshakes), far below the full re-propagation \
         frame count a naive rebuild would need — and delivery stays exact after every \
         kill/rejoin cycle"
    );
    emit("overlay_failover", scale.name, &failover_rows);

    // ---- detection mode: zero-operator recovery latency ----------------
    //
    // With heartbeats enabled the fabric is its own liveness oracle: a
    // middle broker is crashed *silently* (no `restart` call anywhere)
    // and the detection loop alone — per-link silence, quorum suspicion,
    // fence, rejoin — brings it back. The sweep measures the timer
    // trade-off: tighter heartbeat/suspicion windows detect faster but
    // spend more steady-state frames.
    println!(
        "\n{:<8} {:<8} {:>9} {:>13} {:>13} {:>11} {:>9} {:>10}",
        "routers",
        "timers",
        "interval",
        "detect round",
        "settle round",
        "heartbeats",
        "dropped",
        "delivered"
    );
    let n_detect = n_subs.min(128);
    let mut detect_rows: Vec<JsonObj> = Vec::new();
    for &routers in router_counts {
        for (timers, heartbeats) in [
            ("fast", scbr_overlay::HeartbeatConfig::fast()),
            ("default", scbr_overlay::HeartbeatConfig::default()),
        ] {
            let config = FabricConfig {
                seed: 19,
                index: scbr::index::IndexKind::Poset,
                propagation: Propagation::CoveringPruned,
                ..FabricConfig::preshared(19)
            }
            .with_heartbeats(heartbeats);
            let mut fabric =
                OverlayFabric::build(Topology::line(routers), config).expect("fabric build");
            for (i, spec) in subs.iter().take(n_detect).enumerate() {
                fabric.subscribe(0, ClientId(i as u64), spec).expect("subscribe");
            }
            let victim = routers / 2;
            fabric.crash(victim).expect("crash");
            let rejoins = fabric.run_detection(256).expect("detection settles");
            assert_eq!(rejoins.len(), 1, "exactly one automatic fence-and-restart");
            let detect_round = rejoins[0].round;
            let settle_round = fabric.rounds();
            let heartbeats_sent = fabric.total_heartbeats();
            let dropped = fabric.dropped_frames();
            let deliveries = fabric.publish(routers - 1, &pubs).expect("publish");
            println!(
                "{:<8} {:<8} {:>9} {:>13} {:>13} {:>11} {:>9} {:>10}",
                routers,
                timers,
                heartbeats.interval,
                detect_round,
                settle_round,
                heartbeats_sent,
                dropped,
                deliveries.len()
            );
            detect_rows.push(
                JsonObj::new()
                    .int("routers", routers as u64)
                    .int("hops", (routers - 1) as u64)
                    .int("subscribers", n_detect as u64)
                    .str("timers", timers)
                    .int("interval", heartbeats.interval)
                    .int("suspect_after", heartbeats.suspect_after)
                    .int("gap_grace", heartbeats.gap_grace)
                    .int("detect_round", detect_round)
                    .int("settle_round", settle_round)
                    .int("heartbeats_sent", heartbeats_sent)
                    .int("dropped_frames", dropped)
                    .int("deliveries", deliveries.len() as u64),
            );
        }
    }
    println!(
        "\nexpected: detect round tracks the suspicion window (suspect_after ticks of \
         silence before the quorum fences), settle round adds the replay-driven rejoin, \
         and the faster timers buy detection latency with proportionally more \
         steady-state heartbeat frames"
    );
    emit("overlay_detect", scale.name, &detect_rows);

    // ---- trace mode: per-hop latency breakdown --------------------------
    //
    // A 3-hop attested chain with telemetry enabled: every publication
    // batch carries a trace id, every broker appends a hop record into
    // its in-enclave flight recorder, and the stage histograms split the
    // per-hop virtual time into decrypt / index match / seal. The drain
    // goes through the telemetry registry ([`OverlayFabric::telemetry`]),
    // so this sweep also exercises the uniform snapshot surface the
    // registry absorbs.
    let trace_routers = 4; // 3 hops, per the fabric's telemetry story
    let n_trace_subs = n_subs.min(64);
    let n_trace_pubs = n_pubs.min(24);
    let trace_batches: &[usize] = &[1, 4, n_trace_pubs];
    println!(
        "\n{:<6} {:<8} {:>6} {:>8} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "batch",
        "router",
        "recs",
        "matched",
        "match ns",
        "seal ns",
        "decrypt p50",
        "idx p50",
        "hop p50"
    );
    let mut trace_rows: Vec<JsonObj> = Vec::new();
    for &batch in trace_batches {
        let config = FabricConfig {
            seed: 23,
            index: scbr::index::IndexKind::Poset,
            propagation: Propagation::CoveringPruned,
            ..FabricConfig::attested(23)
        }
        .with_telemetry();
        let mut fabric =
            OverlayFabric::build(Topology::line(trace_routers), config).expect("fabric build");
        for (i, spec) in subs.iter().take(n_trace_subs).enumerate() {
            fabric.subscribe(0, ClientId(i as u64), spec).expect("subscribe");
        }
        // Traced `batch`-sized publication batches, injected at the far
        // edge so every record crosses the full chain.
        let chunks = pubs[..n_trace_pubs].chunks(batch).count();
        for chunk in pubs[..n_trace_pubs].chunks(batch) {
            fabric.publish(trace_routers - 1, chunk).expect("publish");
        }
        let snap = fabric.telemetry();
        assert_eq!(snap.traces().len(), chunks, "one trace per batch, all drained");
        for broker in &snap.brokers {
            let hops: Vec<_> =
                snap.hops.iter().filter(|h| h.broker == broker.broker).copied().collect();
            assert_eq!(hops.len(), chunks, "every trace recorded at every hop");
            let mean = |f: fn(&scbr_overlay::HopRecord) -> u64| {
                hops.iter().map(f).sum::<u64>() / hops.len().max(1) as u64
            };
            let mean_match = mean(|h| h.match_latency_ns());
            let mean_forward = mean(|h| h.forward_latency_ns());
            let matched = hops.iter().map(|h| h.matched_bucket).max().unwrap_or(0);
            let p50 = |label: &str| {
                broker
                    .stages
                    .iter()
                    .find(|s| s.stage.label() == label)
                    .map(|s| s.p50_ns)
                    .unwrap_or(0)
            };
            println!(
                "{:<6} {:<8} {:>6} {:>8} {:>12} {:>12} {:>12} {:>12} {:>12}",
                batch,
                broker.broker,
                hops.len(),
                matched,
                mean_match,
                mean_forward,
                p50("decrypt"),
                p50("index_match"),
                p50("hop_crossing")
            );
            trace_rows.push(
                JsonObj::new()
                    .int("batch", batch as u64)
                    .int("router", broker.broker)
                    .int("hops_recorded", hops.len() as u64)
                    .int("matched_bucket_max", matched as u64)
                    .int("mean_match_ns", mean_match)
                    .int("mean_forward_ns", mean_forward)
                    .int("decrypt_p50_ns", p50("decrypt"))
                    .int("index_match_p50_ns", p50("index_match"))
                    .int("seal_p50_ns", p50("seal"))
                    .int("hop_crossing_p50_ns", p50("hop_crossing"))
                    .int("ecalls", broker.counters.get("broker.ecalls").unwrap_or(0))
                    .int("trace_dropped", broker.counters.get("trace.dropped").unwrap_or(0)),
            );
        }
    }
    println!(
        "\nexpected: every batch leaves one hop record at each of the {} brokers \
         (match ≫ seal at the subscriber edge, both ≈ 0 at pass-through hops), \
         larger batches amortise the per-hop crossing across more publications, and \
         the decrypt/index-match stage medians account for the bulk of hop_crossing",
        trace_routers
    );
    emit("overlay_trace", scale.name, &trace_rows);

    // ---- partition mode: slices × skew threshold -----------------------
    //
    // The edge broker's matcher is sharded into N slices. Clustered
    // unsubscribes (every id hashed off slice 0 is retired) manufacture
    // the worst-case occupancy skew — all surviving load on one slice —
    // and one forced rebalancing pass must bring the skew back under the
    // configured threshold by migrating subscriptions fullest → emptiest,
    // without losing or duplicating a single delivery.
    println!(
        "\n{:<7} {:>10} {:>9} {:>10} {:>10} {:>9} {:>7} {:>11} {:>10}",
        "slices",
        "threshold",
        "survive",
        "skew pre",
        "skew post",
        "migrated",
        "passes",
        "ecall/brkr",
        "delivered"
    );
    let part_routers = 3usize;
    let n_part = n_subs.min(192);
    let mut partition_rows: Vec<JsonObj> = Vec::new();
    for &slices in &[2usize, 4, 8] {
        for &threshold in &[1.25f64, 1.5, 2.0] {
            let config = FabricConfig {
                seed: 29,
                index: scbr::index::IndexKind::Poset,
                propagation: Propagation::CoveringPruned,
                ..FabricConfig::attested(29)
            }
            .with_partition(
                scbr_overlay::PartitionConfig::sliced(slices).with_skew_threshold(threshold),
            );
            let mut fabric =
                OverlayFabric::build(Topology::line(part_routers), config).expect("fabric build");
            let mut ids = Vec::with_capacity(n_part);
            for (i, spec) in subs.iter().take(n_part).enumerate() {
                ids.push(fabric.subscribe(0, ClientId(i as u64), spec).expect("subscribe"));
            }
            // Retire everything hash-homed off slice 0 (the same
            // Fibonacci placement the matcher uses), piling the whole
            // surviving population onto one slice.
            for id in &ids {
                let home = (id.0.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) % slices as u64;
                if home != 0 {
                    fabric.unsubscribe(*id).expect("clustered unsubscribe");
                }
            }
            let skew_before = fabric.occupancy_skew(0);
            let survivors = fabric.broker_stats()[0].subscriptions;
            let before = fabric.publish(part_routers - 1, &pubs).expect("publish before");

            let report = fabric.rebalance(0).expect("rebalance");
            // A perfectly level spread (slice gap ≤ 1) still has skew
            // ceil(m/s)·s/m — a small population cannot go below that,
            // whatever the threshold asks for.
            let level = survivors.div_ceil(slices) as f64 * slices as f64 / survivors as f64;
            assert!(
                report.skew_after <= threshold.max(level) + 1e-9,
                "rebalancer failed to converge: skew {} > threshold {threshold} \
                 (level bound {level:.3}, {slices} slices, {survivors} survivors)",
                report.skew_after
            );
            fabric.reset_counters();
            let after = fabric.publish(part_routers - 1, &pubs).expect("publish after");
            assert_eq!(before, after, "migration lost or duplicated deliveries");
            let ecalls_per_broker = fabric.total_ecalls() as f64 / part_routers as f64;

            println!(
                "{:<7} {:>10.2} {:>9} {:>10.2} {:>10.2} {:>9} {:>7} {:>11.2} {:>10}",
                slices,
                threshold,
                fabric.broker_stats()[0].subscriptions,
                skew_before,
                report.skew_after,
                report.migrated,
                report.passes,
                ecalls_per_broker,
                after.len()
            );
            partition_rows.push(
                JsonObj::new()
                    .int("slices", slices as u64)
                    .num("skew_threshold", threshold)
                    .int("subscribers", n_part as u64)
                    .int("survivors", fabric.broker_stats()[0].subscriptions as u64)
                    .num("skew_before", skew_before)
                    .num("skew_after", report.skew_after)
                    .int("migrated", report.migrated as u64)
                    .int("passes", report.passes as u64)
                    .num("ecalls_per_broker", ecalls_per_broker)
                    .int("deliveries", after.len() as u64),
            );
        }
    }
    println!(
        "\nexpected: clustered churn drives the skew to ≈ slices; one rebalancing run \
         brings it back under every threshold (migrating ≈ survivors·(1−1/slices) ids at \
         the tightest), identical delivery sets before and after, and the fanned batch \
         still costs ≈ 1 crossing per broker"
    );
    emit("overlay_partition", scale.name, &partition_rows);
}
