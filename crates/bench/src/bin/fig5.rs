//! Reproduces **Figure 5**: overhead of encryption and enclave.
//!
//! Matching time against a growing `e100a1` subscription database in four
//! configurations: {inside, outside enclave} × {AES-encrypted, plaintext}
//! headers. The paper's observations to look for:
//!
//! * AES adds a small, near-constant overhead (< 5 µs);
//! * inside and outside track each other until the index outgrows the
//!   8 MB LLC (≈ 10 k subscriptions), after which the MEE surcharge on
//!   every miss opens a gap approaching ~40 % at 100 k.
//!
//! ```text
//! cargo run --release -p scbr-bench --bin fig5
//! ```

use scbr_bench::json::{emit, JsonObj};
use scbr_bench::{banner, EngineConfig, MatchExperiment, Scale};
use scbr_workloads::{StockMarket, Workload, WorkloadName};
use sgx_sim::SgxPlatform;

fn main() {
    let scale = Scale::from_env();
    banner("Figure 5", "Overhead of encryption and enclave (workload e100a1, 4 configs)", &scale);
    let market = StockMarket::generate(&scale.market, 1);
    let workload = Workload::from_name(WorkloadName::E100A1);
    let max = *scale.sub_counts.last().expect("non-empty counts");
    eprintln!("generating {max} subscriptions …");
    let subs = workload.subscriptions(&market, max, 7);
    let pubs = workload.publications(&market, scale.pubs_per_point, 8);
    let platform = SgxPlatform::for_testing(9);

    let configs =
        [EngineConfig::InAes, EngineConfig::InPlain, EngineConfig::OutAes, EngineConfig::OutPlain];
    let mut experiments: Vec<MatchExperiment> =
        configs.iter().map(|c| MatchExperiment::new(&platform, *c)).collect();

    println!(
        "\n{:<10} {:>9} {:>14} {:>14} {:>14} {:>14}",
        "subs", "db (MB)", "in-aes (µs)", "in-plain", "out-aes", "out-plain"
    );
    let mut rows: Vec<JsonObj> = Vec::new();
    for &count in &scale.sub_counts {
        let mut row: Vec<f64> = Vec::new();
        let mut db_mb = 0.0;
        for (config, exp) in configs.iter().zip(experiments.iter_mut()) {
            exp.load_to(&subs, count);
            let point = exp.measure(&pubs);
            row.push(point.matching_us);
            db_mb = point.index_bytes as f64 / (1024.0 * 1024.0);
            rows.push(
                JsonObj::new()
                    .str("config", config.label())
                    .int("subscriptions", count as u64)
                    .num("matching_us", point.matching_us)
                    .num("cache_miss_rate", point.cache_miss_rate)
                    .int("index_bytes", point.index_bytes),
            );
        }
        println!(
            "{:<10} {:>9.2} {:>14.2} {:>14.2} {:>14.2} {:>14.2}",
            count, db_mb, row[0], row[1], row[2], row[3]
        );
    }
    println!("\n(cache limit: 8 MB; the index crosses it between 10 k and 25 k subscriptions)");
    println!("expected (paper): <5 µs constant AES overhead; in/out gap opens past the");
    println!("cache limit, approaching ~40% at 100 k subscriptions");
    emit("fig5", scale.name, &rows);
}
