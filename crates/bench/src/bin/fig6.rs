//! Reproduces **Figure 6**: the containment-based algorithm across all
//! nine workloads, plaintext, outside enclaves.
//!
//! The paper's observations to look for: `e100a1` and `e100a1zz100` are the
//! fastest (all-equality subscriptions form deep containment trees);
//! `e80a4` and `extsub4` the slowest (4× more attributes yield wide,
//! shallow forests with many roots to test).
//!
//! ```text
//! cargo run --release -p scbr-bench --bin fig6
//! ```

use scbr_bench::json::{emit, JsonObj};
use scbr_bench::{banner, EngineConfig, MatchExperiment, Scale};
use scbr_workloads::{StockMarket, Workload};
use sgx_sim::SgxPlatform;

fn main() {
    let scale = Scale::from_env();
    banner(
        "Figure 6",
        "Containment-based matching across the nine workloads (plaintext, outside enclave)",
        &scale,
    );
    let market = StockMarket::generate(&scale.market, 1);
    let platform = SgxPlatform::for_testing(9);
    let max = *scale.sub_counts.last().expect("non-empty counts");

    println!("\n{:<12} matching µs at each checkpoint", "workload");
    print!("{:<12}", "");
    for c in &scale.sub_counts {
        print!(" {c:>10}");
    }
    println!();
    println!("{}", "-".repeat(12 + 11 * scale.sub_counts.len()));

    let mut rows: Vec<JsonObj> = Vec::new();
    for workload in Workload::all() {
        eprintln!("[{}] generating …", workload.name());
        let subs = workload.subscriptions(&market, max, 7);
        let pubs = workload.publications(&market, scale.pubs_per_point, 8);
        let mut exp = MatchExperiment::new(&platform, EngineConfig::OutPlain);
        print!("{:<12}", workload.name().to_string());
        for &count in &scale.sub_counts {
            exp.load_to(&subs, count);
            let point = exp.measure(&pubs);
            print!(" {:>10.1}", point.matching_us);
            rows.push(
                JsonObj::new()
                    .str("workload", &workload.name().to_string())
                    .str("config", EngineConfig::OutPlain.label())
                    .int("subs", point.subs as u64)
                    .num("matching_us", point.matching_us)
                    .num("throughput_msg_per_s", 1_000_000.0 / point.matching_us)
                    .num("cache_miss_rate", point.cache_miss_rate)
                    .int("index_bytes", point.index_bytes),
            );
        }
        println!();
    }
    println!("\nexpected ordering (paper): e100a1 / e100a1zz100 fastest; e80a4 / extsub4 slowest");
    emit("fig6", scale.name, &rows);
}
