//! Ablation: containment poset vs naive scan vs counting index, measured
//! in **virtual time** on the simulated memory hierarchy (via
//! `iter_custom`), which is the quantity the paper's evaluation is about.
//!
//! Expected: the poset wins on equality-heavy workloads (deep trees, heavy
//! pruning) and the gap narrows on attribute-multiplied ones.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scbr::attr::AttrSchema;
use scbr::ids::{ClientId, SubscriptionId};
use scbr::index::{new_index, IndexKind, SubscriptionIndex};
use scbr_workloads::{MarketConfig, StockMarket, Workload, WorkloadName};
use sgx_sim::{CacheConfig, CostModel, MemorySim};
use std::time::Duration;

struct Bench {
    index: Box<dyn SubscriptionIndex>,
    headers: Vec<scbr::publication::CompiledHeader>,
    mem: MemorySim,
}

fn setup(kind: IndexKind, workload: WorkloadName, n: usize) -> Bench {
    let market = StockMarket::generate(&MarketConfig::small(), 1);
    let workload = Workload::from_name(workload);
    let schema = AttrSchema::new();
    let mem = MemorySim::native(CacheConfig::default(), CostModel::default());
    let mut index = new_index(kind, &mem);
    for (i, spec) in workload.subscriptions(&market, n, 2).into_iter().enumerate() {
        index.insert(
            SubscriptionId(i as u64),
            ClientId(i as u64),
            spec.compile(&schema).expect("compiles"),
        );
    }
    let headers = workload
        .publications(&market, 32, 3)
        .into_iter()
        .map(|p| p.compile_header(&schema).expect("compiles"))
        .collect();
    Bench { index, headers, mem }
}

fn bench_virtual_match(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_index_virtual_us");
    group.sample_size(10);
    for workload in [WorkloadName::E100A1, WorkloadName::E80A4] {
        for kind in [IndexKind::Poset, IndexKind::Naive, IndexKind::Counting] {
            let bench = setup(kind, workload, 5_000);
            group.bench_function(BenchmarkId::new(format!("{kind:?}"), workload.as_str()), |b| {
                b.iter_custom(|iters| {
                    let mut out = Vec::new();
                    bench.mem.reset_counters();
                    for i in 0..iters {
                        out.clear();
                        bench.index.match_header(
                            &bench.headers[i as usize % bench.headers.len()],
                            &mut out,
                        );
                    }
                    Duration::from_nanos(bench.mem.elapsed_ns() as u64)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_virtual_match);
criterion_main!(benches);
