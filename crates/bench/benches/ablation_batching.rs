//! Ablation: the paper's future-work idea of **batching publications per
//! enclave transition** ("using message batching … to reduce the frequency
//! of enclave enters/exits").
//!
//! Measured in virtual time via `iter_custom`, driving the production
//! batch API ([`RouterEngine::match_batch`]): one ECALL per publication
//! versus one ECALL per batch. The saving is the EENTER/EEXIT pair
//! (~3.8 µs) amortised across the batch — significant for small databases
//! where matching itself is only tens of microseconds. The `batching`
//! binary sweeps the same axis against slice counts and a tight EPC.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scbr::engine::RouterEngine;
use scbr::ids::{ClientId, SubscriptionId};
use scbr::index::IndexKind;
use scbr_crypto::ctr::AesCtr;
use scbr_crypto::rng::CryptoRng;
use scbr_workloads::{MarketConfig, StockMarket, Workload, WorkloadName};
use sgx_sim::SgxPlatform;
use std::time::Duration;

fn bench_batching(c: &mut Criterion) {
    let market = StockMarket::generate(&MarketConfig::small(), 1);
    let workload = Workload::from_name(WorkloadName::E100A1);
    let subs = workload.subscriptions(&market, 2_000, 2);
    let pubs = workload.publications(&market, 32, 3);
    let platform = SgxPlatform::for_testing(5);
    let sk = scbr_crypto::ctr::SymmetricKey::from_bytes([0x5c; 16]);
    let pk = scbr_crypto::rsa::RsaPublicKey::from_parts(
        scbr_crypto::BigUint::from_u64(3233),
        scbr_crypto::BigUint::from_u64(17),
    );
    let mut rng = CryptoRng::from_seed(7);
    let headers: Vec<Vec<u8>> = pubs
        .iter()
        .map(|p| AesCtr::encrypt_with_nonce(&sk, &mut rng, &scbr::codec::encode_header(p)))
        .collect();

    let mut group = c.benchmark_group("ablation_ecall_batching_virtual");
    group.sample_size(10);
    for batch in [1usize, 8, 32] {
        let mut engine = RouterEngine::in_enclave(&platform, IndexKind::Poset).expect("launch");
        let (sk, pk) = (sk.clone(), pk.clone());
        engine.call(move |e| e.provision_keys(sk, pk));
        for (i, s) in subs.iter().enumerate() {
            engine
                .call(|e| e.register_plain(SubscriptionId(i as u64), ClientId(i as u64), s))
                .expect("register");
        }
        group.bench_function(BenchmarkId::from_parameter(batch), |b| {
            b.iter_custom(|iters| {
                engine.reset_counters();
                // Process `iters` publications in single-ECALL batches.
                let mut processed = 0u64;
                while processed < iters {
                    let n = batch.min((iters - processed) as usize);
                    let at = processed as usize % headers.len();
                    let window: Vec<Vec<u8>> =
                        (0..n).map(|k| headers[(at + k) % headers.len()].clone()).collect();
                    engine.match_batch(&window).expect("match");
                    processed += n as u64;
                }
                Duration::from_nanos(engine.elapsed_ns() as u64)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batching);
criterion_main!(benches);
