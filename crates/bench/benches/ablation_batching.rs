//! Ablation: the paper's future-work idea of **batching publications per
//! enclave transition** ("using message batching … to reduce the frequency
//! of enclave enters/exits").
//!
//! Measured in virtual time via `iter_custom`: one ECALL per publication
//! versus one ECALL per batch of 32. The saving is the EENTER/EEXIT pair
//! (~3.8 µs) amortised across the batch — significant for small databases
//! where matching itself is only tens of microseconds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scbr::engine::MatchingEngine;
use scbr::ids::{ClientId, SubscriptionId};
use scbr::index::IndexKind;
use scbr_workloads::{MarketConfig, StockMarket, Workload, WorkloadName};
use sgx_sim::enclave::EnclaveBuilder;
use sgx_sim::SgxPlatform;
use std::time::Duration;

fn bench_batching(c: &mut Criterion) {
    let market = StockMarket::generate(&MarketConfig::small(), 1);
    let workload = Workload::from_name(WorkloadName::E100A1);
    let subs = workload.subscriptions(&market, 2_000, 2);
    let pubs = workload.publications(&market, 32, 3);
    let platform = SgxPlatform::for_testing(5);

    let mut group = c.benchmark_group("ablation_ecall_batching_virtual");
    group.sample_size(10);
    for batch in [1usize, 8, 32] {
        let enclave = platform
            .launch(EnclaveBuilder::new("scbr-router").add_page(b"engine"))
            .expect("launch");
        let mut engine = MatchingEngine::new(enclave.memory(), IndexKind::Poset);
        for (i, s) in subs.iter().enumerate() {
            engine
                .register_plain(SubscriptionId(i as u64), ClientId(i as u64), s)
                .expect("register");
        }
        group.bench_function(BenchmarkId::from_parameter(batch), |b| {
            b.iter_custom(|iters| {
                enclave.memory().reset_counters();
                // Process `iters` publications in ECALL batches of `batch`.
                let mut processed = 0u64;
                while processed < iters {
                    let n = batch.min((iters - processed) as usize);
                    enclave.ecall(|_| {
                        for k in 0..n {
                            let p = &pubs[(processed as usize + k) % pubs.len()];
                            let _ = engine.match_plain(p).expect("match");
                        }
                    });
                    processed += n as u64;
                }
                Duration::from_nanos(enclave.memory().elapsed_ns() as u64)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batching);
criterion_main!(benches);
