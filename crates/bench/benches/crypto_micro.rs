//! Microbenchmarks of the crypto substrate (wall-clock).
//!
//! These measure the *real* throughput of our from-scratch primitives —
//! useful to confirm the substitution documented in DESIGN.md (software
//! AES vs the paper's Crypto++/AES-NI) and to keep regressions visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scbr_crypto::ctr::{AesCtr, SymmetricKey};
use scbr_crypto::hmac::HmacSha256;
use scbr_crypto::rng::CryptoRng;
use scbr_crypto::rsa::RsaKeyPair;
use scbr_crypto::sha256::Sha256;
use scbr_crypto::SealedBox;
use std::hint::black_box;

fn bench_aes_ctr(c: &mut Criterion) {
    let mut group = c.benchmark_group("aes_ctr");
    let key = SymmetricKey::from_bytes([7u8; 16]);
    for size in [64usize, 1024, 16 * 1024] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let mut buf = vec![0u8; size];
            b.iter(|| {
                AesCtr::new(&key, [1; 8]).apply(black_box(&mut buf));
            });
        });
    }
    group.finish();
}

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 4096] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let buf = vec![0xabu8; size];
            b.iter(|| Sha256::digest(black_box(&buf)));
        });
    }
    group.finish();
}

fn bench_hmac(c: &mut Criterion) {
    c.bench_function("hmac_sha256_1k", |b| {
        let buf = vec![0u8; 1024];
        b.iter(|| HmacSha256::mac(b"key", black_box(&buf)));
    });
}

fn bench_sealed_box(c: &mut Criterion) {
    c.bench_function("sealed_box_roundtrip_1k", |b| {
        let key = SymmetricKey::from_bytes([3u8; 16]);
        let sb = SealedBox::new(&key);
        let mut rng = CryptoRng::from_seed(1);
        let msg = vec![0u8; 1024];
        b.iter(|| {
            let sealed = sb.seal(black_box(&msg), b"aad", &mut rng);
            sb.open(&sealed, b"aad").unwrap()
        });
    });
}

fn bench_rsa(c: &mut Criterion) {
    let mut rng = CryptoRng::from_seed(2);
    let pair = RsaKeyPair::generate(1024, &mut rng).expect("keygen");
    c.bench_function("rsa1024_encrypt", |b| {
        b.iter(|| pair.public().encrypt(black_box(b"a symmetric key"), &mut rng).unwrap());
    });
    let ct = pair.public().encrypt(b"a symmetric key", &mut rng).unwrap();
    c.bench_function("rsa1024_decrypt", |b| {
        b.iter(|| pair.private().decrypt(black_box(&ct)).unwrap());
    });
    c.bench_function("rsa1024_sign", |b| {
        b.iter(|| pair.private().sign(black_box(b"registration body")).unwrap());
    });
    let sig = pair.private().sign(b"registration body").unwrap();
    c.bench_function("rsa1024_verify", |b| {
        b.iter(|| pair.public().verify(black_box(b"registration body"), &sig).unwrap());
    });
}

criterion_group!(benches, bench_aes_ctr, bench_sha256, bench_hmac, bench_sealed_box, bench_rsa);
criterion_main!(benches);
