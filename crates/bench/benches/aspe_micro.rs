//! Microbenchmarks of the ASPE baseline (wall-clock): encryption cost per
//! subscription/publication and matching throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scbr::ids::{ClientId, SubscriptionId};
use scbr::publication::PublicationSpec;
use scbr::subscription::SubscriptionSpec;
use scbr_aspe::{AspeAuthority, AspeMatcher};
use scbr_crypto::rng::CryptoRng;
use sgx_sim::{CacheConfig, CostModel, MemorySim};
use std::hint::black_box;

fn authority(rng: &mut CryptoRng) -> AspeAuthority {
    AspeAuthority::new(
        &["open", "high", "low", "close", "volume", "change", "pct_change"],
        &["symbol", "day"],
        rng,
    )
}

fn sample_publication(i: usize) -> PublicationSpec {
    PublicationSpec::new()
        .attr("symbol", format!("S{}", i % 50).as_str())
        .attr("open", 10.0 + i as f64)
        .attr("high", 11.0 + i as f64)
        .attr("low", 9.0 + i as f64)
        .attr("close", 10.5 + i as f64)
        .attr("volume", 1_000i64 + i as i64)
        .attr("change", 0.5)
        .attr("pct_change", 5.0)
}

fn sample_subscription(i: usize) -> SubscriptionSpec {
    SubscriptionSpec::new().eq("symbol", format!("S{}", i % 50).as_str()).between(
        "close",
        10.0 + (i % 100) as f64,
        20.0 + (i % 100) as f64,
    )
}

fn bench_encrypt(c: &mut Criterion) {
    let mut rng = CryptoRng::from_seed(1);
    let auth = authority(&mut rng);
    c.bench_function("aspe_encrypt_subscription", |b| {
        let mut i = 0;
        b.iter(|| {
            i += 1;
            auth.encrypt_subscription(black_box(&sample_subscription(i)), &mut rng).unwrap()
        });
    });
    c.bench_function("aspe_encrypt_publication", |b| {
        let mut i = 0;
        b.iter(|| {
            i += 1;
            auth.encrypt_publication(black_box(&sample_publication(i)), &mut rng).unwrap()
        });
    });
}

fn bench_match(c: &mut Criterion) {
    let mut group = c.benchmark_group("aspe_match");
    for n in [1_000usize, 5_000] {
        let mut rng = CryptoRng::from_seed(2);
        let auth = authority(&mut rng);
        let mem = MemorySim::native(CacheConfig::default(), CostModel::free());
        let mut matcher = AspeMatcher::new(&mem);
        for i in 0..n {
            let enc = auth.encrypt_subscription(&sample_subscription(i), &mut rng).unwrap();
            matcher.insert(SubscriptionId(i as u64), ClientId(i as u64), enc);
        }
        let pubs: Vec<_> = (0..20)
            .map(|i| auth.encrypt_publication(&sample_publication(i), &mut rng).unwrap())
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut i = 0;
            b.iter(|| {
                i += 1;
                matcher.match_publication(black_box(&pubs[i % pubs.len()]))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_encrypt, bench_match);
criterion_main!(benches);
