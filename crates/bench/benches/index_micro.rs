//! Microbenchmarks of the subscription indexes (wall-clock) on realistic
//! workload data.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scbr::attr::AttrSchema;
use scbr::ids::{ClientId, SubscriptionId};
use scbr::index::{new_index, IndexKind};
use scbr_workloads::{MarketConfig, StockMarket, Workload, WorkloadName};
use sgx_sim::{CacheConfig, CostModel, MemorySim};
use std::hint::black_box;

type Setup = (Box<dyn scbr::index::SubscriptionIndex>, Vec<scbr::publication::CompiledHeader>);

fn setup(kind: IndexKind, n: usize) -> Setup {
    let market = StockMarket::generate(&MarketConfig::small(), 1);
    let workload = Workload::from_name(WorkloadName::E80A1);
    let schema = AttrSchema::new();
    let mem = MemorySim::native(CacheConfig::default(), CostModel::free());
    let mut index = new_index(kind, &mem);
    for (i, spec) in workload.subscriptions(&market, n, 2).into_iter().enumerate() {
        index.insert(
            SubscriptionId(i as u64),
            ClientId(i as u64),
            spec.compile(&schema).expect("compiles"),
        );
    }
    let headers = workload
        .publications(&market, 50, 3)
        .into_iter()
        .map(|p| p.compile_header(&schema).expect("compiles"))
        .collect();
    (index, headers)
}

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_match_e80a1");
    for kind in [IndexKind::Poset, IndexKind::Naive, IndexKind::Counting] {
        for n in [1_000usize, 10_000] {
            let (index, headers) = setup(kind, n);
            group.bench_with_input(BenchmarkId::new(format!("{kind:?}"), n), &n, |b, _| {
                let mut out = Vec::new();
                let mut i = 0;
                b.iter(|| {
                    out.clear();
                    index.match_header(black_box(&headers[i % headers.len()]), &mut out);
                    i += 1;
                    out.len()
                });
            });
        }
    }
    group.finish();
}

fn bench_insert(c: &mut Criterion) {
    let market = StockMarket::generate(&MarketConfig::small(), 1);
    let workload = Workload::from_name(WorkloadName::E80A1);
    let subs = workload.subscriptions(&market, 10_000, 2);
    let schema = AttrSchema::new();
    let compiled: Vec<_> = subs.iter().map(|s| s.compile(&schema).unwrap()).collect();

    let mut group = c.benchmark_group("index_insert_10k");
    group.sample_size(10);
    for kind in [IndexKind::Poset, IndexKind::Naive, IndexKind::Counting] {
        group.bench_function(format!("{kind:?}"), |b| {
            b.iter(|| {
                let mem = MemorySim::native(CacheConfig::default(), CostModel::free());
                let mut index = new_index(kind, &mem);
                for (i, sub) in compiled.iter().enumerate() {
                    index.insert(SubscriptionId(i as u64), ClientId(i as u64), sub.clone());
                }
                index.len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matching, bench_insert);
criterion_main!(benches);
