//! Zipf-distributed rank sampling.
//!
//! The paper's skewed workloads select subscription values "according to a
//! Zipfian law with exponent s = 1". This sampler precomputes the CDF over
//! `n` ranks and draws by binary search.

use scbr_crypto::rng::CryptoRng;

/// A Zipf distribution over ranks `0..n` (rank 0 most popular).
///
/// ```
/// use scbr_workloads::Zipf;
/// use scbr_crypto::CryptoRng;
///
/// let zipf = Zipf::new(100, 1.0);
/// let mut rng = CryptoRng::from_seed(1);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 100);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution over `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is negative/NaN.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        assert!(s >= 0.0 && s.is_finite(), "exponent must be a finite non-negative number");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when there is a single rank.
    pub fn is_empty(&self) -> bool {
        false // constructor guarantees n > 0
    }

    /// Draws a rank.
    pub fn sample(&self, rng: &mut CryptoRng) -> usize {
        let u = rng.unit_f64();
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).expect("no NaN")) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability mass of `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(10, 1.0);
        let mut rng = CryptoRng::from_seed(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn rank_zero_is_most_popular() {
        let z = Zipf::new(50, 1.0);
        let mut rng = CryptoRng::from_seed(2);
        let mut counts = vec![0usize; 50];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[10]);
        assert!(counts[0] > counts[49] * 10, "head is much heavier than tail");
    }

    #[test]
    fn s_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        for k in 0..4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(30, 1.0);
        let total: f64 = (0..30).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_s1_head_mass_matches_theory() {
        // With s=1 and n ranks, p(0) = 1/H_n.
        let n = 100;
        let h: f64 = (1..=n).map(|k| 1.0 / k as f64).sum();
        let z = Zipf::new(n, 1.0);
        assert!((z.pmf(0) - 1.0 / h).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        Zipf::new(0, 1.0);
    }
}
