//! World-chat-style push-notification fan-out workload.
//!
//! Models the load profile of a large chat/notification service routed
//! through content-based pub/sub — the regime the million-subscriber
//! bench (`bench/src/bin/million.rs`) drives:
//!
//! * **Per-user subscriptions.** Each user follows a handful of topics
//!   (channels) with a minimum-priority threshold:
//!   `topic = "t<k>" ∧ priority ≥ p`. Thresholds over one topic nest, so
//!   hot topics grow the deep containment chains the poset index prunes.
//! * **Zipf topics.** Topic popularity follows a Zipf law (exponent
//!   `s ≈ 1`): a few world channels dominate both subscription interest
//!   and publication traffic, mirroring the paper's `z100` datasets.
//! * **Heavy churn.** Users join and leave constantly; [`PushFeed::churn`]
//!   emits an interleaved op stream (subscribe / unsubscribe / publish)
//!   that keeps the live-set size steady while recycling index slots.
//!
//! Everything is deterministic per seed, so benchmarks and equivalence
//! tests can replay identical streams against different index kinds.

use crate::zipf::Zipf;
use scbr::ids::{ClientId, SubscriptionId};
use scbr::publication::PublicationSpec;
use scbr::subscription::SubscriptionSpec;
use scbr_crypto::rng::CryptoRng;

/// Shape of the push-notification workload.
#[derive(Debug, Clone)]
pub struct PushFeedConfig {
    /// Distinct users; each owns `subs_per_user` subscriptions.
    pub users: usize,
    /// Distinct topics (chat channels), rank 0 the hottest.
    pub topics: usize,
    /// Subscriptions per user.
    pub subs_per_user: usize,
    /// Zipf exponent for topic popularity (1.0 = the paper's `z100`).
    pub zipf_s: f64,
    /// Priority levels (`0..levels`); subscriptions filter `priority ≥ p`.
    pub priority_levels: u8,
}

impl PushFeedConfig {
    /// A small smoke-test shape (~3k subscriptions).
    pub fn small() -> Self {
        PushFeedConfig {
            users: 1_000,
            topics: 100,
            subs_per_user: 3,
            zipf_s: 1.0,
            priority_levels: 4,
        }
    }

    /// Scales the user count so the workload carries `total` live
    /// subscriptions (the bench's sweep axis).
    pub fn with_total_subscriptions(total: usize) -> Self {
        let mut cfg = PushFeedConfig::small();
        cfg.users = total.div_ceil(cfg.subs_per_user).max(1);
        // Keep roughly 100 users per topic so hot topics stay hot without
        // collapsing the whole feed into one channel.
        cfg.topics = (cfg.users / 100).clamp(100, 50_000);
        cfg
    }

    /// Total subscriptions this config generates.
    pub fn total_subscriptions(&self) -> usize {
        self.users * self.subs_per_user
    }
}

/// One step of the churn stream.
#[derive(Debug, Clone)]
pub enum ChurnOp {
    /// A user joins a topic.
    Subscribe {
        /// Fresh subscription id.
        id: SubscriptionId,
        /// The subscribing user.
        client: ClientId,
        /// The filter to register.
        spec: SubscriptionSpec,
    },
    /// A previously issued subscription leaves.
    Unsubscribe {
        /// The id issued by an earlier [`ChurnOp::Subscribe`].
        id: SubscriptionId,
    },
    /// A message is published into the feed.
    Publish {
        /// The publication header.
        spec: PublicationSpec,
    },
}

/// Deterministic generator for the push-notification workload.
#[derive(Debug, Clone)]
pub struct PushFeed {
    cfg: PushFeedConfig,
    topic_zipf: Zipf,
}

impl PushFeed {
    /// Builds a generator for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate config (zero topics or priority levels).
    pub fn new(cfg: PushFeedConfig) -> Self {
        assert!(cfg.priority_levels > 0, "need at least one priority level");
        let topic_zipf = Zipf::new(cfg.topics, cfg.zipf_s);
        PushFeed { cfg, topic_zipf }
    }

    /// The configuration.
    pub fn config(&self) -> &PushFeedConfig {
        &self.cfg
    }

    fn subscription_spec(&self, rng: &mut CryptoRng) -> SubscriptionSpec {
        let topic = self.topic_zipf.sample(rng);
        let p = (rng.unit_f64() * self.cfg.priority_levels as f64) as i64;
        SubscriptionSpec::new().eq("topic", format!("t{topic}").as_str()).ge("priority", p)
    }

    /// The full initial subscription set: `users × subs_per_user` rows,
    /// ids dense from 0, clients = user index.
    pub fn subscriptions(&self, seed: u64) -> Vec<(SubscriptionId, ClientId, SubscriptionSpec)> {
        let mut rng = CryptoRng::from_seed(seed);
        let mut out = Vec::with_capacity(self.cfg.total_subscriptions());
        for user in 0..self.cfg.users as u64 {
            for _ in 0..self.cfg.subs_per_user {
                let id = SubscriptionId(out.len() as u64);
                out.push((id, ClientId(user), self.subscription_spec(&mut rng)));
            }
        }
        out
    }

    fn publication_spec(&self, rng: &mut CryptoRng) -> PublicationSpec {
        let topic = self.topic_zipf.sample(rng);
        let priority = (rng.unit_f64() * self.cfg.priority_levels as f64) as i64;
        let sender = (rng.unit_f64() * self.cfg.users.max(1) as f64) as i64;
        PublicationSpec::new()
            .attr("topic", format!("t{topic}").as_str())
            .attr("priority", priority)
            .attr("sender", sender)
            .attr("len", 1 + (rng.unit_f64() * 4096.0) as i64)
    }

    /// `count` publication headers, topic-Zipf and priority-uniform.
    pub fn publications(&self, count: usize, seed: u64) -> Vec<PublicationSpec> {
        let mut rng = CryptoRng::from_seed(seed ^ 0x9e37_79b9_7f4a_7c15);
        (0..count).map(|_| self.publication_spec(&mut rng)).collect()
    }

    /// A churn stream of `ops` steps: ~40 % subscribes, ~40 % unsubscribes
    /// of the oldest live churn subscription (FIFO — chat sessions expire
    /// in join order), ~20 % publishes. Fresh ids start at `next_id` so the
    /// stream composes with [`PushFeed::subscriptions`] without collisions.
    pub fn churn(&self, ops: usize, next_id: u64, seed: u64) -> Vec<ChurnOp> {
        let mut rng = CryptoRng::from_seed(seed ^ 0x5851_f42d_4c95_7f2d);
        let mut next = next_id;
        let mut live: std::collections::VecDeque<SubscriptionId> =
            std::collections::VecDeque::new();
        let mut out = Vec::with_capacity(ops);
        for _ in 0..ops {
            let roll = rng.unit_f64();
            if roll < 0.4 || live.is_empty() && roll < 0.8 {
                let id = SubscriptionId(next);
                next += 1;
                let client = ClientId((rng.unit_f64() * self.cfg.users.max(1) as f64) as u64);
                live.push_back(id);
                out.push(ChurnOp::Subscribe { id, client, spec: self.subscription_spec(&mut rng) });
            } else if roll < 0.8 {
                let id = live.pop_front().expect("guarded by is_empty above");
                out.push(ChurnOp::Unsubscribe { id });
            } else {
                out.push(ChurnOp::Publish { spec: self.publication_spec(&mut rng) });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subscriptions_are_deterministic_and_sized() {
        let feed = PushFeed::new(PushFeedConfig::small());
        let a = feed.subscriptions(7);
        let b = feed.subscriptions(7);
        assert_eq!(a.len(), feed.config().total_subscriptions());
        assert_eq!(a.len(), b.len());
        for ((ia, ca, sa), (ib, cb, sb)) in a.iter().zip(&b) {
            assert_eq!(ia, ib);
            assert_eq!(ca, cb);
            assert_eq!(sa, sb);
        }
        // Every subscription is topic-eq + priority-ge.
        for (_, _, spec) in &a {
            assert_eq!(spec.predicates().len(), 2);
        }
    }

    #[test]
    fn hot_topics_dominate() {
        let feed = PushFeed::new(PushFeedConfig::small());
        let subs = feed.subscriptions(11);
        let on_t0 = subs
            .iter()
            .filter(|(_, _, s)| {
                s.predicates().iter().any(|p| format!("{:?}", p.value).contains("\"t0\""))
            })
            .count();
        assert!(
            on_t0 * 10 > subs.len(),
            "rank-0 topic should hold far more than 1/{} of interest: {on_t0}/{}",
            feed.config().topics,
            subs.len()
        );
    }

    #[test]
    fn with_total_subscriptions_hits_the_target() {
        let cfg = PushFeedConfig::with_total_subscriptions(30_000);
        assert!(cfg.total_subscriptions() >= 30_000);
        assert!(cfg.total_subscriptions() < 30_000 + cfg.subs_per_user);
    }

    #[test]
    fn churn_never_unsubscribes_unknown_ids_and_mixes_ops() {
        let feed = PushFeed::new(PushFeedConfig::small());
        let base = feed.subscriptions(3);
        let ops = feed.churn(5_000, base.len() as u64, 3);
        let mut live: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let (mut subs, mut unsubs, mut pubs) = (0usize, 0usize, 0usize);
        for op in &ops {
            match op {
                ChurnOp::Subscribe { id, .. } => {
                    assert!(id.0 >= base.len() as u64, "fresh ids never collide with the base set");
                    assert!(live.insert(id.0), "ids are never reissued");
                    subs += 1;
                }
                ChurnOp::Unsubscribe { id } => {
                    assert!(live.remove(&id.0), "only live churn ids are unsubscribed");
                    unsubs += 1;
                }
                ChurnOp::Publish { .. } => pubs += 1,
            }
        }
        assert!(subs > 1_000 && unsubs > 1_000 && pubs > 500, "{subs}/{unsubs}/{pubs}");
    }
}
