//! # scbr-workloads
//!
//! Synthetic datasets reproducing the SCBR paper's evaluation workloads
//! (Table 1).
//!
//! The paper reused the datasets of Barazzutti et al. (DEBS '12): roughly
//! 250 000 stock quotes collected from Yahoo! Finance over five years,
//! with 8–11 attributes per publication, from which nine synthetic
//! subscription datasets were derived. The original data is not
//! redistributable, so this crate synthesises a statistically equivalent
//! market ([`market`]) and implements the nine recipes ([`recipes`]):
//!
//! | name | equality predicates | attributes | value selection |
//! |------|--------------------|------------|-----------------|
//! | `e100a1` | 100 % : 1 | 8–11 | uniform |
//! | `e80a1`  | 20 % : 0, 80 % : 1 | 8–11 | uniform |
//! | `e80a2`  | same | 2× | uniform |
//! | `e80a4`  | same | 4× | uniform |
//! | `extsub2` | 15/60/15/10 % : 0/1/2/3 | 2× | uniform |
//! | `extsub4` | same | 4× | uniform |
//! | `e80a1z100` | 20 % : 0, 80 % : 1 | 8–11 | Zipf on symbol |
//! | `e80a1zz100` | same | 8–11 | Zipf on all attributes |
//! | `e100a1zz100` | 100 % : 1 | 8–11 | Zipf on all attributes |
//!
//! What matters for reproduction is the *structure* these recipes induce:
//! all-equality workloads over hot symbols build deep containment trees
//! (fast poset matching), attribute-multiplied workloads spread constraints
//! over 2–4× more attributes and flatten the forest (slow matching) —
//! the spread Figures 6 and 7 measure.
//!
//! ```
//! use scbr_workloads::{StockMarket, MarketConfig, recipes::Workload};
//!
//! let market = StockMarket::generate(&MarketConfig::small(), 1);
//! let workload = Workload::by_name("e100a1").unwrap();
//! let subs = workload.subscriptions(&market, 100, 7);
//! let pubs = workload.publications(&market, 10, 8);
//! assert_eq!(subs.len(), 100);
//! assert_eq!(pubs.len(), 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod market;
pub mod pushfeed;
pub mod recipes;
pub mod stats;
pub mod zipf;

pub use market::{MarketConfig, Quote, StockMarket};
pub use pushfeed::{ChurnOp, PushFeed, PushFeedConfig};
pub use recipes::{Workload, WorkloadName};
pub use zipf::Zipf;
