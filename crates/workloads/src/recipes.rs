//! The nine Table 1 workload recipes.
//!
//! Each recipe controls three axes (see the crate docs for the full
//! table):
//!
//! * the distribution of equality-predicate counts per subscription;
//! * the attribute multiplier (publications merge 1, 2 or 4 quotes);
//! * how values are selected (uniform, Zipf over symbols, or Zipf over
//!   all attribute values).
//!
//! Range predicates are drawn from a *nesting ladder*: per (symbol,
//! attribute) anchor values with geometrically increasing widths, so that
//! equality-heavy workloads over hot symbols produce the deep containment
//! trees the paper's Figure 6 attributes its fastest curves to, while the
//! attribute-multiplied workloads scatter constraints across 2–4× more
//! attributes and flatten the forest.

use crate::market::StockMarket;
use crate::zipf::Zipf;
use scbr::publication::PublicationSpec;
use scbr::subscription::SubscriptionSpec;
use scbr_crypto::rng::CryptoRng;

/// The nine workloads of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant names are the paper's dataset names
pub enum WorkloadName {
    E100A1,
    E80A1,
    E80A2,
    E80A4,
    ExtSub2,
    ExtSub4,
    E80A1Z100,
    E80A1Zz100,
    E100A1Zz100,
}

impl WorkloadName {
    /// All nine, in the paper's Table 1 order.
    pub fn all() -> [WorkloadName; 9] {
        [
            WorkloadName::E100A1,
            WorkloadName::E80A1,
            WorkloadName::E80A2,
            WorkloadName::E80A4,
            WorkloadName::ExtSub2,
            WorkloadName::ExtSub4,
            WorkloadName::E80A1Z100,
            WorkloadName::E80A1Zz100,
            WorkloadName::E100A1Zz100,
        ]
    }

    /// The paper's dataset name.
    pub fn as_str(&self) -> &'static str {
        match self {
            WorkloadName::E100A1 => "e100a1",
            WorkloadName::E80A1 => "e80a1",
            WorkloadName::E80A2 => "e80a2",
            WorkloadName::E80A4 => "e80a4",
            WorkloadName::ExtSub2 => "extsub2",
            WorkloadName::ExtSub4 => "extsub4",
            WorkloadName::E80A1Z100 => "e80a1z100",
            WorkloadName::E80A1Zz100 => "e80a1zz100",
            WorkloadName::E100A1Zz100 => "e100a1zz100",
        }
    }
}

impl std::fmt::Display for WorkloadName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// How subscription reference values are selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueSelection {
    /// Uniformly random symbols and days.
    Uniform,
    /// Zipf(s=1) over symbols, uniform days.
    ZipfSymbol,
    /// Zipf(s=1) over symbols, days and ladder levels.
    ZipfAll,
}

/// A fully parameterised workload.
#[derive(Debug, Clone)]
pub struct Workload {
    name: WorkloadName,
    /// `(equality predicate count, probability)` rows.
    eq_dist: Vec<(usize, f64)>,
    /// 1, 2 or 4 quotes merged per publication.
    attr_multiplier: usize,
    selection: ValueSelection,
}

/// Widths of the range-nesting ladder (relative half-widths).
const LADDER: [f64; 7] = [0.01, 0.02, 0.04, 0.08, 0.16, 0.32, 0.64];

impl Workload {
    /// Builds the recipe for `name`.
    pub fn from_name(name: WorkloadName) -> Self {
        use WorkloadName::*;
        let (eq_dist, attr_multiplier, selection): (Vec<(usize, f64)>, usize, ValueSelection) =
            match name {
                E100A1 => (vec![(1, 1.0)], 1, ValueSelection::Uniform),
                E80A1 => (vec![(0, 0.2), (1, 0.8)], 1, ValueSelection::Uniform),
                E80A2 => (vec![(0, 0.2), (1, 0.8)], 2, ValueSelection::Uniform),
                E80A4 => (vec![(0, 0.2), (1, 0.8)], 4, ValueSelection::Uniform),
                ExtSub2 => {
                    (vec![(0, 0.15), (1, 0.60), (2, 0.15), (3, 0.10)], 2, ValueSelection::Uniform)
                }
                ExtSub4 => {
                    (vec![(0, 0.15), (1, 0.60), (2, 0.15), (3, 0.10)], 4, ValueSelection::Uniform)
                }
                E80A1Z100 => (vec![(0, 0.2), (1, 0.8)], 1, ValueSelection::ZipfSymbol),
                E80A1Zz100 => (vec![(0, 0.2), (1, 0.8)], 1, ValueSelection::ZipfAll),
                E100A1Zz100 => (vec![(1, 1.0)], 1, ValueSelection::ZipfAll),
            };
        Workload { name, eq_dist, attr_multiplier, selection }
    }

    /// Looks a recipe up by the paper's dataset name.
    pub fn by_name(name: &str) -> Option<Self> {
        WorkloadName::all().into_iter().find(|w| w.as_str() == name).map(Self::from_name)
    }

    /// All nine recipes in Table 1 order.
    pub fn all() -> Vec<Self> {
        WorkloadName::all().into_iter().map(Self::from_name).collect()
    }

    /// The workload's name.
    pub fn name(&self) -> WorkloadName {
        self.name
    }

    /// The attribute multiplier (1, 2 or 4).
    pub fn attr_multiplier(&self) -> usize {
        self.attr_multiplier
    }

    /// The equality-count distribution rows.
    pub fn eq_distribution(&self) -> &[(usize, f64)] {
        &self.eq_dist
    }

    /// The value-selection mode.
    pub fn selection(&self) -> ValueSelection {
        self.selection
    }

    fn draw_eq_count(&self, rng: &mut CryptoRng) -> usize {
        let u = rng.unit_f64();
        let mut acc = 0.0;
        for (count, p) in &self.eq_dist {
            acc += p;
            if u < acc {
                return *count;
            }
        }
        self.eq_dist.last().map(|(c, _)| *c).unwrap_or(0)
    }

    fn draw_symbol(&self, market: &StockMarket, zipf: &Zipf, rng: &mut CryptoRng) -> usize {
        match self.selection {
            ValueSelection::Uniform => rng.below(market.symbols().len() as u64) as usize,
            ValueSelection::ZipfSymbol | ValueSelection::ZipfAll => zipf.sample(rng),
        }
    }

    fn draw_ladder_level(&self, ladder_zipf: &Zipf, rng: &mut CryptoRng) -> usize {
        match self.selection {
            ValueSelection::ZipfAll => ladder_zipf.sample(rng),
            _ => rng.below(LADDER.len() as u64) as usize,
        }
    }

    /// Generates `n` subscriptions deterministically from `seed`.
    pub fn subscriptions(
        &self,
        market: &StockMarket,
        n: usize,
        seed: u64,
    ) -> Vec<SubscriptionSpec> {
        let mut rng = CryptoRng::from_seed(seed);
        let symbol_zipf = Zipf::new(market.symbols().len(), 1.0);
        let ladder_zipf = Zipf::new(LADDER.len(), 1.0);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.one_subscription(market, &symbol_zipf, &ladder_zipf, &mut rng));
        }
        out
    }

    fn one_subscription(
        &self,
        market: &StockMarket,
        symbol_zipf: &Zipf,
        ladder_zipf: &Zipf,
        rng: &mut CryptoRng,
    ) -> SubscriptionSpec {
        let mut spec = SubscriptionSpec::new();
        let eq_count = self.draw_eq_count(rng);

        // Which quote group (suffix) each predicate targets.
        let group_suffix = |g: usize| if g == 0 { String::new() } else { format!("_{}", g + 1) };

        // Equality predicates: symbol equality on distinct quote groups,
        // then day equality once groups run out.
        let mut eq_attrs: Vec<(String, usize)> = Vec::new(); // (attr name, group)
        for g in 0..self.attr_multiplier {
            eq_attrs.push((format!("symbol{}", group_suffix(g)), g));
        }
        eq_attrs.push(("day".to_owned(), 0));
        let primary_symbol = self.draw_symbol(market, symbol_zipf, rng);
        for (attr, group) in eq_attrs.iter().take(eq_count) {
            if attr.starts_with("symbol") {
                let sym = if *group == 0 {
                    primary_symbol
                } else {
                    self.draw_symbol(market, symbol_zipf, rng)
                };
                spec = spec.eq(attr, market.symbols()[sym].as_str());
            } else {
                let day = rng.below(market.config().days as u64) as i64;
                spec = spec.eq(attr, day);
            }
        }

        // Range predicates from the nesting ladder: usually one, sometimes
        // two, each on a distinct attribute (two independent ranges on one
        // attribute would frequently be contradictory).
        let n_ranges = if rng.chance(0.7) { 1 } else { 2 };
        let numeric = StockMarket::numeric_attributes();
        let mut used_attrs: Vec<String> = Vec::new();
        for _ in 0..n_ranges {
            let group = rng.below(self.attr_multiplier as u64) as usize;
            let attr_base = numeric[rng.below(numeric.len() as u64) as usize];
            let attr = format!("{attr_base}{}", group_suffix(group));
            if used_attrs.contains(&attr) {
                continue;
            }
            used_attrs.push(attr.clone());
            // Anchor: the symbol's day-0 value for this attribute, which
            // makes same-symbol ranges nest; occasionally use a random
            // day's value instead to add sibling diversity.
            let sym = if group == 0 {
                primary_symbol
            } else {
                self.draw_symbol(market, symbol_zipf, rng)
            };
            let day =
                if rng.chance(0.15) { rng.below(market.config().days as u64) as usize } else { 0 };
            let quote = market.quote(sym, day);
            let center: f64 = match attr_base {
                "open" => quote.open,
                "high" => quote.high,
                "low" => quote.low,
                "close" => quote.close,
                "volume" => quote.volume as f64,
                "change" => quote.change.abs().max(0.01),
                _ => quote.pct_change.abs().max(0.01),
            };
            let width = LADDER[self.draw_ladder_level(ladder_zipf, rng)];
            let (lo, hi) = (center * (1.0 - width), center * (1.0 + width));
            let style = rng.below(10);
            if attr_base == "volume" {
                let (lo, hi) = (lo as i64, hi as i64 + 1);
                spec = match style {
                    0 => spec.ge(&attr, lo),
                    1 => spec.le(&attr, hi),
                    _ => spec.between(&attr, lo, hi),
                };
            } else {
                spec = match style {
                    0 => spec.ge(&attr, round4(lo)),
                    1 => spec.le(&attr, round4(hi)),
                    _ => spec.between(&attr, round4(lo), round4(hi)),
                };
            }
        }
        spec
    }

    /// Generates `n` publications deterministically from `seed`.
    pub fn publications(&self, market: &StockMarket, n: usize, seed: u64) -> Vec<PublicationSpec> {
        let mut rng = CryptoRng::from_seed(seed);
        let symbol_zipf = Zipf::new(market.symbols().len(), 1.0);
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let sym = self.draw_symbol(market, &symbol_zipf, &mut rng);
            let day = rng.below(market.config().days as u64) as usize;
            let primary = market.quote(sym, day);
            let mut merged: Vec<&crate::market::Quote> = Vec::new();
            for _ in 1..self.attr_multiplier {
                let s = rng.below(market.symbols().len() as u64) as usize;
                let d = rng.below(market.config().days as u64) as usize;
                merged.push(market.quote(s, d));
            }
            let payload = format!("quote #{i} {} day {}", primary.symbol, primary.day);
            out.push(primary.to_publication(&merged, payload.into_bytes()));
        }
        out
    }
}

fn round4(v: f64) -> f64 {
    (v * 10_000.0).round() / 10_000.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::market::MarketConfig;
    use scbr::attr::AttrSchema;
    use scbr::ids::{ClientId, SubscriptionId};
    use scbr::index::poset::PosetIndex;
    use scbr::index::SubscriptionIndex;
    use sgx_sim::{CostModel, MemorySim};

    fn market() -> StockMarket {
        StockMarket::generate(&MarketConfig::small(), 1)
    }

    #[test]
    fn all_nine_recipes_resolve() {
        assert_eq!(Workload::all().len(), 9);
        for name in WorkloadName::all() {
            let w = Workload::by_name(name.as_str()).unwrap();
            assert_eq!(w.name(), name);
        }
        assert!(Workload::by_name("bogus").is_none());
    }

    #[test]
    fn generation_is_deterministic() {
        let m = market();
        let w = Workload::from_name(WorkloadName::E80A1);
        assert_eq!(w.subscriptions(&m, 50, 9), w.subscriptions(&m, 50, 9));
        assert_ne!(w.subscriptions(&m, 50, 9), w.subscriptions(&m, 50, 10));
    }

    #[test]
    fn all_subscriptions_compile() {
        let m = market();
        let schema = AttrSchema::new();
        for w in Workload::all() {
            for spec in w.subscriptions(&m, 200, 42) {
                spec.compile(&schema)
                    .unwrap_or_else(|e| panic!("{}: {spec} failed: {e}", w.name()));
            }
        }
    }

    #[test]
    fn all_publications_compile() {
        let m = market();
        let schema = AttrSchema::new();
        for w in Workload::all() {
            for publication in w.publications(&m, 50, 43) {
                publication.compile_header(&schema).unwrap();
            }
        }
    }

    #[test]
    fn equality_counts_match_distribution() {
        let m = market();
        let w = Workload::from_name(WorkloadName::E80A1);
        let subs = w.subscriptions(&m, 2000, 11);
        let with_eq = subs
            .iter()
            .filter(|s| s.predicates().iter().any(|p| p.op == scbr::predicate::Op::Eq))
            .count();
        let share = with_eq as f64 / subs.len() as f64;
        assert!((share - 0.8).abs() < 0.05, "e80a1 eq share {share}");

        let w100 = Workload::from_name(WorkloadName::E100A1);
        let subs100 = w100.subscriptions(&m, 500, 12);
        assert!(subs100.iter().all(|s| {
            s.predicates().iter().filter(|p| p.op == scbr::predicate::Op::Eq).count() == 1
        }));
    }

    #[test]
    fn extsub_has_multi_equality_subscriptions() {
        let m = market();
        let w = Workload::from_name(WorkloadName::ExtSub2);
        let subs = w.subscriptions(&m, 2000, 13);
        let max_eq = subs
            .iter()
            .map(|s| s.predicates().iter().filter(|p| p.op == scbr::predicate::Op::Eq).count())
            .max()
            .unwrap();
        assert_eq!(max_eq, 3, "extsub draws up to 3 equality predicates");
    }

    #[test]
    fn attribute_multiplier_expands_publications() {
        let m = market();
        let w1 = Workload::from_name(WorkloadName::E80A1);
        let w2 = Workload::from_name(WorkloadName::E80A2);
        let w4 = Workload::from_name(WorkloadName::E80A4);
        let p1 = &w1.publications(&m, 5, 14)[0];
        let p2 = &w2.publications(&m, 5, 14)[0];
        let p4 = &w4.publications(&m, 5, 14)[0];
        assert!(p2.header().len() >= 2 * p1.header().len() - 4);
        assert!(p4.header().len() >= 4 * p1.header().len() - 10);
    }

    #[test]
    fn multiplied_workloads_reference_suffixed_attributes() {
        let m = market();
        let w4 = Workload::from_name(WorkloadName::E80A4);
        let subs = w4.subscriptions(&m, 500, 15);
        let touches_suffix = subs
            .iter()
            .any(|s| s.predicates().iter().any(|p| p.attr.contains("_2") || p.attr.contains("_4")));
        assert!(touches_suffix, "a4 subscriptions spread over merged attribute groups");
    }

    #[test]
    fn zipf_workloads_concentrate_symbols() {
        let m = market();
        let uniform = Workload::from_name(WorkloadName::E80A1);
        let zipf = Workload::from_name(WorkloadName::E80A1Z100);
        let count_top = |w: &Workload| {
            let subs = w.subscriptions(&m, 2000, 16);
            let top_symbol = m.symbols()[0].as_str();
            subs.iter()
                .filter(|s| {
                    s.predicates().iter().any(|p| {
                        p.attr == "symbol"
                            && matches!(&p.value, scbr::value::Value::Str(v) if v == top_symbol)
                    })
                })
                .count()
        };
        let u = count_top(&uniform);
        let z = count_top(&zipf);
        assert!(z > 2 * u, "zipf concentrates on rank-0 symbol: uniform {u} vs zipf {z}");
    }

    #[test]
    fn equality_workloads_build_deeper_posets() {
        // The structural property behind Figure 6: e100a1 forms deeper,
        // narrower forests than e80a4.
        let m = market();
        let schema = AttrSchema::new();
        let build = |w: &Workload| {
            let mem = MemorySim::native(sgx_sim::CacheConfig::default(), CostModel::free());
            let mut index = PosetIndex::new(&mem);
            for (i, s) in w.subscriptions(&m, 1500, 17).into_iter().enumerate() {
                index.insert(
                    SubscriptionId(i as u64),
                    ClientId(i as u64),
                    s.compile(&schema).unwrap(),
                );
            }
            (index.depth(), index.root_count())
        };
        let (depth_eq, roots_eq) = build(&Workload::from_name(WorkloadName::E100A1));
        let (depth_a4, roots_a4) = build(&Workload::from_name(WorkloadName::E80A4));
        assert!(depth_eq >= depth_a4, "e100a1 depth {depth_eq} vs e80a4 {depth_a4}");
        assert!(roots_a4 > roots_eq, "e80a4 roots {roots_a4} vs e100a1 {roots_eq}");
    }

    #[test]
    fn publications_sometimes_match_subscriptions() {
        // Sanity: the generated workloads produce non-trivial match rates.
        let m = market();
        let schema = AttrSchema::new();
        let w = Workload::from_name(WorkloadName::E100A1);
        let mem = MemorySim::native(sgx_sim::CacheConfig::default(), CostModel::free());
        let mut index = PosetIndex::new(&mem);
        for (i, s) in w.subscriptions(&m, 2000, 18).into_iter().enumerate() {
            index.insert(SubscriptionId(i as u64), ClientId(i as u64), s.compile(&schema).unwrap());
        }
        let mut total = 0usize;
        for publication in w.publications(&m, 100, 19) {
            let header = publication.compile_header(&schema).unwrap();
            let mut out = Vec::new();
            index.match_header(&header, &mut out);
            total += out.len();
        }
        assert!(total > 0, "at least some publications match");
    }
}
