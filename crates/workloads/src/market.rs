//! Synthetic stock-market data generator.
//!
//! Stands in for the paper's Yahoo! Finance crawl: a configurable universe
//! of symbols, each following a geometric random walk over trading days,
//! producing quotes with 8–11 attributes (symbol, OHLC prices, volume,
//! derived fields, occasional dividend/split annotations).

use scbr::publication::PublicationSpec;
use scbr::value::Value;
use scbr_crypto::rng::CryptoRng;

/// Market generation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct MarketConfig {
    /// Number of distinct ticker symbols.
    pub symbols: usize,
    /// Number of trading days simulated per symbol.
    pub days: usize,
    /// Initial price range (uniform between the two values).
    pub initial_price: (f64, f64),
    /// Daily volatility (stddev of the log-return proxy).
    pub volatility: f64,
}

impl MarketConfig {
    /// The paper's scale: ~250 000 quotes over five years.
    /// 200 symbols × 1 260 trading days = 252 000 quotes.
    pub fn paper_scale() -> Self {
        MarketConfig { symbols: 200, days: 1260, initial_price: (5.0, 500.0), volatility: 0.02 }
    }

    /// A small market for unit tests and examples.
    pub fn small() -> Self {
        MarketConfig { symbols: 20, days: 50, initial_price: (10.0, 100.0), volatility: 0.02 }
    }

    /// Total quotes this configuration produces.
    pub fn quote_count(&self) -> usize {
        self.symbols * self.days
    }
}

impl Default for MarketConfig {
    fn default() -> Self {
        MarketConfig::paper_scale()
    }
}

/// One daily quote for one symbol.
#[derive(Debug, Clone, PartialEq)]
pub struct Quote {
    /// Ticker symbol.
    pub symbol: String,
    /// Trading-day index (0-based).
    pub day: u32,
    /// Opening price.
    pub open: f64,
    /// Daily high.
    pub high: f64,
    /// Daily low.
    pub low: f64,
    /// Closing price.
    pub close: f64,
    /// Shares traded.
    pub volume: i64,
    /// Close minus open.
    pub change: f64,
    /// Relative change in percent.
    pub pct_change: f64,
    /// Dividend paid this day, if any (adds a 10th attribute).
    pub dividend: Option<f64>,
    /// Split ratio applied this day, if any (adds an 11th attribute).
    pub split_ratio: Option<f64>,
}

impl Quote {
    /// The attribute names/values of this quote, in a stable order, with
    /// names suffixed by `suffix` (empty for the primary quote; `_2`, `_3`…
    /// when merging quotes for the attribute-multiplied workloads).
    pub fn attributes(&self, suffix: &str) -> Vec<(String, Value)> {
        let mut attrs: Vec<(String, Value)> = vec![
            (format!("symbol{suffix}"), Value::Str(self.symbol.clone())),
            (format!("day{suffix}"), Value::Int(self.day as i64)),
            (format!("open{suffix}"), Value::Float(self.open)),
            (format!("high{suffix}"), Value::Float(self.high)),
            (format!("low{suffix}"), Value::Float(self.low)),
            (format!("close{suffix}"), Value::Float(self.close)),
            (format!("volume{suffix}"), Value::Int(self.volume)),
            (format!("change{suffix}"), Value::Float(self.change)),
            (format!("pct_change{suffix}"), Value::Float(self.pct_change)),
        ];
        if let Some(d) = self.dividend {
            attrs.push((format!("dividend{suffix}"), Value::Float(d)));
        }
        if let Some(r) = self.split_ratio {
            attrs.push((format!("split_ratio{suffix}"), Value::Float(r)));
        }
        attrs
    }

    /// Builds a publication from this quote (and optionally further quotes
    /// merged in, as the `a2`/`a4` workloads require).
    pub fn to_publication(&self, merged: &[&Quote], payload: Vec<u8>) -> PublicationSpec {
        let mut spec = PublicationSpec::new();
        for (name, value) in self.attributes("") {
            spec = spec.attr(&name, value);
        }
        for (i, q) in merged.iter().enumerate() {
            for (name, value) in q.attributes(&format!("_{}", i + 2)) {
                spec = spec.attr(&name, value);
            }
        }
        spec.payload(payload)
    }
}

/// A generated market: quotes grouped by symbol.
#[derive(Debug, Clone)]
pub struct StockMarket {
    config: MarketConfig,
    symbols: Vec<String>,
    /// `quotes[s][d]` = quote of symbol `s` on day `d`.
    quotes: Vec<Vec<Quote>>,
}

impl StockMarket {
    /// Generates a market deterministically from `seed`.
    pub fn generate(config: &MarketConfig, seed: u64) -> Self {
        let mut rng = CryptoRng::from_seed(seed);
        let symbols: Vec<String> = (0..config.symbols).map(ticker_name).collect();
        let mut quotes = Vec::with_capacity(config.symbols);
        for (s, symbol) in symbols.iter().enumerate() {
            let mut series = Vec::with_capacity(config.days);
            let (lo, hi) = config.initial_price;
            let mut price = lo + rng.unit_f64() * (hi - lo);
            // Liquidity varies by symbol over two orders of magnitude.
            let base_volume = 10_000.0 * 10f64.powf(rng.unit_f64() * 2.0);
            for day in 0..config.days {
                let drift = (rng.unit_f64() - 0.5) * 2.0 * config.volatility;
                let open = price;
                let close = (open * (1.0 + drift)).max(0.01);
                let spread = open.max(close) * config.volatility * rng.unit_f64();
                let high = open.max(close) + spread;
                let low = (open.min(close) - spread).max(0.01);
                let volume = (base_volume * (0.5 + rng.unit_f64())) as i64;
                let dividend = if rng.chance(0.02) { Some(round2(close * 0.01)) } else { None };
                let split_ratio = if rng.chance(0.002) { Some(2.0) } else { None };
                series.push(Quote {
                    symbol: symbol.clone(),
                    day: day as u32,
                    open: round2(open),
                    high: round2(high),
                    low: round2(low),
                    close: round2(close),
                    volume,
                    change: round2(close - open),
                    pct_change: round2((close - open) / open * 100.0),
                    dividend,
                    split_ratio,
                });
                price = close;
            }
            quotes.push(series);
            let _ = s;
        }
        StockMarket { config: config.clone(), symbols, quotes }
    }

    /// The generation parameters.
    pub fn config(&self) -> &MarketConfig {
        &self.config
    }

    /// All ticker symbols.
    pub fn symbols(&self) -> &[String] {
        &self.symbols
    }

    /// Quote of `symbol` (by index) on `day`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn quote(&self, symbol: usize, day: usize) -> &Quote {
        &self.quotes[symbol][day]
    }

    /// Total number of quotes.
    pub fn len(&self) -> usize {
        self.config.quote_count()
    }

    /// True when the market has no quotes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Draws a uniformly random quote.
    pub fn random_quote(&self, rng: &mut CryptoRng) -> &Quote {
        let s = rng.below(self.quotes.len() as u64) as usize;
        let d = rng.below(self.quotes[s].len() as u64) as usize;
        &self.quotes[s][d]
    }

    /// Numeric range attributes subscriptions constrain (base names,
    /// no suffix).
    pub fn numeric_attributes() -> &'static [&'static str] {
        &["open", "high", "low", "close", "volume", "change", "pct_change"]
    }
}

/// Deterministic, distinct ticker names: A, B, …, Z, AA, AB, …
fn ticker_name(i: usize) -> String {
    let mut name = String::new();
    let mut n = i + 1;
    while n > 0 {
        let rem = (n - 1) % 26;
        name.insert(0, (b'A' + rem as u8) as char);
        n = (n - 1) / 26;
    }
    name
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = StockMarket::generate(&MarketConfig::small(), 7);
        let b = StockMarket::generate(&MarketConfig::small(), 7);
        let c = StockMarket::generate(&MarketConfig::small(), 8);
        assert_eq!(a.quote(3, 10), b.quote(3, 10));
        assert_ne!(a.quote(3, 10), c.quote(3, 10));
    }

    #[test]
    fn ticker_names_distinct() {
        let names: Vec<String> = (0..800).map(ticker_name).collect();
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
        assert_eq!(ticker_name(0), "A");
        assert_eq!(ticker_name(25), "Z");
        assert_eq!(ticker_name(26), "AA");
    }

    #[test]
    fn quote_invariants() {
        let market = StockMarket::generate(&MarketConfig::small(), 1);
        for s in 0..market.symbols().len() {
            for d in 0..market.config().days {
                let q = market.quote(s, d);
                assert!(q.high >= q.open.max(q.close), "high bounds prices");
                assert!(q.low <= q.open.min(q.close), "low bounds prices");
                assert!(q.low > 0.0, "prices stay positive");
                assert!(q.volume > 0);
                assert!((q.change - (q.close - q.open)).abs() < 0.02);
            }
        }
    }

    #[test]
    fn attribute_count_in_paper_range() {
        let market = StockMarket::generate(&MarketConfig::small(), 2);
        let mut min = usize::MAX;
        let mut max = 0;
        for s in 0..market.symbols().len() {
            for d in 0..market.config().days {
                let n = market.quote(s, d).attributes("").len();
                min = min.min(n);
                max = max.max(n);
            }
        }
        assert!(min >= 9, "at least 9 attributes, got {min}");
        assert!(max <= 11, "at most 11 attributes, got {max}");
    }

    #[test]
    fn merged_publication_multiplies_attributes() {
        let market = StockMarket::generate(&MarketConfig::small(), 3);
        let q1 = market.quote(0, 0);
        let q2 = market.quote(1, 0);
        let q3 = market.quote(2, 0);
        let q4 = market.quote(3, 0);
        let single = q1.to_publication(&[], Vec::new());
        let double = q1.to_publication(&[q2], Vec::new());
        let quad = q1.to_publication(&[q2, q3, q4], Vec::new());
        assert!(double.header().len() >= 2 * single.header().len() - 4);
        assert!(quad.header().len() > 3 * single.header().len());
        // Attribute names stay unique after merging.
        let names: std::collections::HashSet<_> =
            quad.header().iter().map(|(n, _)| n.clone()).collect();
        assert_eq!(names.len(), quad.header().len());
    }

    #[test]
    fn paper_scale_config_is_250k() {
        let c = MarketConfig::paper_scale();
        assert_eq!(c.quote_count(), 252_000);
    }

    #[test]
    fn random_quote_covers_market() {
        let market = StockMarket::generate(&MarketConfig::small(), 4);
        let mut rng = CryptoRng::from_seed(5);
        let mut seen_symbols = std::collections::HashSet::new();
        for _ in 0..500 {
            seen_symbols.insert(market.random_quote(&mut rng).symbol.clone());
        }
        assert!(seen_symbols.len() > 10, "uniform sampling reaches many symbols");
    }
}
