//! Dataset statistics — the machinery behind the Table 1 harness.

use crate::market::StockMarket;
use crate::recipes::Workload;
use scbr::predicate::Op;
use scbr::subscription::SubscriptionSpec;
use std::collections::BTreeMap;

/// Summary statistics of a generated subscription dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadStats {
    /// Dataset name.
    pub name: String,
    /// Number of subscriptions summarised.
    pub subscriptions: usize,
    /// `count -> share` of equality predicates per subscription.
    pub eq_histogram: BTreeMap<usize, f64>,
    /// Mean predicates (equality + range) per subscription.
    pub mean_predicates: f64,
    /// Number of distinct attribute names constrained across the dataset.
    pub distinct_attributes: usize,
    /// Mean publication header width for this workload.
    pub mean_publication_attrs: f64,
    /// Share of subscriptions referencing the most popular symbol.
    pub top_symbol_share: f64,
}

impl WorkloadStats {
    /// Computes statistics for `workload` over freshly generated data.
    pub fn compute(
        workload: &Workload,
        market: &StockMarket,
        n_subs: usize,
        n_pubs: usize,
        seed: u64,
    ) -> Self {
        let subs = workload.subscriptions(market, n_subs, seed);
        let pubs = workload.publications(market, n_pubs, seed + 1);

        let mut eq_histogram: BTreeMap<usize, usize> = BTreeMap::new();
        let mut total_predicates = 0usize;
        let mut attributes = std::collections::HashSet::new();
        let mut symbol_counts: BTreeMap<String, usize> = BTreeMap::new();
        for s in &subs {
            let eq = count_eq(s);
            *eq_histogram.entry(eq).or_default() += 1;
            total_predicates += s.predicates().len();
            for p in s.predicates() {
                attributes.insert(p.attr.clone());
                if p.attr == "symbol" && p.op == Op::Eq {
                    if let scbr::value::Value::Str(v) = &p.value {
                        *symbol_counts.entry(v.clone()).or_default() += 1;
                    }
                }
            }
        }
        let top = symbol_counts.values().copied().max().unwrap_or(0);
        let mean_publication_attrs =
            pubs.iter().map(|p| p.header().len()).sum::<usize>() as f64 / pubs.len().max(1) as f64;
        WorkloadStats {
            name: workload.name().as_str().to_owned(),
            subscriptions: subs.len(),
            eq_histogram: eq_histogram
                .into_iter()
                .map(|(k, v)| (k, v as f64 / subs.len().max(1) as f64))
                .collect(),
            mean_predicates: total_predicates as f64 / subs.len().max(1) as f64,
            distinct_attributes: attributes.len(),
            mean_publication_attrs,
            top_symbol_share: top as f64 / subs.len().max(1) as f64,
        }
    }

    /// Renders one row of the Table 1 reproduction.
    pub fn row(&self) -> String {
        let eq: Vec<String> =
            self.eq_histogram.iter().map(|(k, v)| format!("{:.0}%:{k}eq", v * 100.0)).collect();
        format!(
            "{:<12} {:<30} preds/sub={:<4.1} attrs={:<3} pub-attrs={:<5.1} top-sym={:.1}%",
            self.name,
            eq.join(" "),
            self.mean_predicates,
            self.distinct_attributes,
            self.mean_publication_attrs,
            self.top_symbol_share * 100.0
        )
    }
}

fn count_eq(s: &SubscriptionSpec) -> usize {
    s.predicates().iter().filter(|p| p.op == Op::Eq).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::market::MarketConfig;
    use crate::recipes::WorkloadName;

    #[test]
    fn stats_reflect_recipe() {
        let market = StockMarket::generate(&MarketConfig::small(), 1);
        let w = Workload::from_name(WorkloadName::E80A1);
        let stats = WorkloadStats::compute(&w, &market, 1000, 50, 3);
        assert_eq!(stats.subscriptions, 1000);
        let zero_eq = stats.eq_histogram.get(&0).copied().unwrap_or(0.0);
        let one_eq = stats.eq_histogram.get(&1).copied().unwrap_or(0.0);
        assert!((zero_eq - 0.2).abs() < 0.05, "zero-eq share {zero_eq}");
        assert!((one_eq - 0.8).abs() < 0.05, "one-eq share {one_eq}");
        assert!(stats.mean_predicates >= 1.0);
        assert!(stats.mean_publication_attrs >= 9.0);
        assert!(!stats.row().is_empty());
    }

    #[test]
    fn zipf_stats_show_concentration() {
        let market = StockMarket::generate(&MarketConfig::small(), 1);
        let uniform =
            WorkloadStats::compute(&Workload::from_name(WorkloadName::E80A1), &market, 1000, 10, 4);
        let zipf = WorkloadStats::compute(
            &Workload::from_name(WorkloadName::E80A1Z100),
            &market,
            1000,
            10,
            4,
        );
        assert!(zipf.top_symbol_share > uniform.top_symbol_share * 2.0);
    }

    #[test]
    fn multiplied_workloads_have_wider_headers() {
        let market = StockMarket::generate(&MarketConfig::small(), 1);
        let a1 =
            WorkloadStats::compute(&Workload::from_name(WorkloadName::E80A1), &market, 200, 20, 5);
        let a4 =
            WorkloadStats::compute(&Workload::from_name(WorkloadName::E80A4), &market, 200, 20, 5);
        assert!(a4.mean_publication_attrs > 3.0 * a1.mean_publication_attrs);
        assert!(a4.distinct_attributes > a1.distinct_attributes);
    }
}
