//! Regression: snapshot/restore stays lossless at 100 k live
//! subscriptions (the arena poset's slab layout, directory buckets, and
//! the engine's position map must all rebuild exactly).
//!
//! The paper's §2 restart flow reloads a sealed subscription database
//! after a broker restart; this drives it at push-feed scale so a
//! restore-path regression that only bites on large, node-sharing
//! databases (a stale `registered_pos` entry, a directory bucket missed
//! during rebuild) cannot hide behind small fixtures.

use scbr::engine::MatchingEngine;
use scbr::index::IndexKind;
use scbr_workloads::{PushFeed, PushFeedConfig};
use sgx_sim::{CacheConfig, CostModel, MemorySim};

const SUBS: usize = 100_000;

#[test]
fn snapshot_round_trips_100k_subscriptions() {
    let feed = PushFeed::new(PushFeedConfig::with_total_subscriptions(SUBS));
    let subs = feed.subscriptions(7);
    assert!(subs.len() >= SUBS);
    let pubs = feed.publications(24, 8);

    let mem = MemorySim::native(CacheConfig::default(), CostModel::free());
    let mut engine = MatchingEngine::new(&mem, IndexKind::Poset);
    for (id, client, spec) in &subs {
        engine.register_plain(*id, *client, spec).expect("register");
    }
    // Churn before snapshotting: recycled arena slots and swap_remove'd
    // registration rows must round-trip too, not just append-only state.
    for (id, _, _) in subs.iter().take(SUBS / 10) {
        assert!(engine.unregister(*id));
    }
    let live = subs.len() - SUBS / 10;
    assert_eq!(engine.index().len(), live);

    let snapshot = engine.snapshot();
    let mem2 = MemorySim::native(CacheConfig::default(), CostModel::free());
    let mut restored = MatchingEngine::new(&mem2, IndexKind::Poset);
    assert_eq!(restored.restore(&snapshot).expect("restore"), live);
    assert_eq!(restored.index().len(), live);
    assert_eq!(restored.index().node_count(), engine.index().node_count());

    for (i, publication) in pubs.iter().enumerate() {
        let mut a = engine.match_plain(publication).expect("match original");
        let mut b = restored.match_plain(publication).expect("match restored");
        a.sort_unstable_by_key(|c| c.0);
        b.sort_unstable_by_key(|c| c.0);
        assert_eq!(a, b, "publication {i} diverged after restore");
        // Push-feed Zipf publications land on hot topics often enough
        // that an all-empty comparison would be vacuous.
        if i == 0 {
            assert!(!a.is_empty(), "expected fan-out on the first hot-topic publication");
        }
    }

    // The restored engine keeps serving churn: unregister through the
    // rebuilt position map and re-match.
    let (gone, _, _) = &subs[SUBS / 2];
    assert!(restored.unregister(*gone));
    assert_eq!(restored.index().len(), live - 1);
}
