//! The unified metrics registry: named counters with snapshot/delta
//! semantics.
//!
//! Every stats struct in the workspace exports a uniform
//! `snapshot() -> Vec<(&'static str, u64)>`; the registry absorbs those
//! pairs under a subsystem prefix so one flat, sorted namespace covers a
//! broker (or a whole fabric). Reading is cheap ([`Snapshot`] is a sorted
//! `Vec`), and [`Snapshot::delta`] subtracts an earlier snapshot to get
//! per-phase counts — the idiom the bench bins use between measurement
//! windows.

use std::collections::BTreeMap;

/// A registry of named `u64` metrics. Counters and gauges share the
/// namespace; `add` accumulates, `set` overwrites.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    entries: BTreeMap<String, u64>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets metric `name` to `value` (gauge semantics).
    pub fn set(&mut self, name: &str, value: u64) {
        match self.entries.get_mut(name) {
            Some(slot) => *slot = value,
            None => {
                self.entries.insert(name.to_owned(), value);
            }
        }
    }

    /// Adds `value` to metric `name` (counter semantics; missing metrics
    /// start at zero).
    pub fn add(&mut self, name: &str, value: u64) {
        *self.entries.entry(name.to_owned()).or_insert(0) += value;
    }

    /// Folds a stats struct's `snapshot()` export into the registry under
    /// `prefix`: each `(name, value)` pair becomes `prefix.name`. Repeated
    /// absorption accumulates, so per-fabric registries can sum the same
    /// export across brokers.
    pub fn absorb(&mut self, prefix: &str, pairs: &[(&'static str, u64)]) {
        for (name, value) in pairs {
            if prefix.is_empty() {
                self.add(name, *value);
            } else {
                self.add(&format!("{prefix}.{name}"), *value);
            }
        }
    }

    /// Current value of `name`, if present.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.entries.get(name).copied()
    }

    /// Number of distinct metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no metric has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// A point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot { pairs: self.entries.iter().map(|(k, v)| (k.clone(), *v)).collect() }
    }
}

/// A point-in-time copy of a [`MetricsRegistry`]: `(name, value)` pairs
/// sorted by name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    pairs: Vec<(String, u64)>,
}

impl Snapshot {
    /// The sorted `(name, value)` pairs.
    pub fn pairs(&self) -> &[(String, u64)] {
        &self.pairs
    }

    /// Value of `name`, if present.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.pairs.binary_search_by(|(k, _)| k.as_str().cmp(name)).ok().map(|i| self.pairs[i].1)
    }

    /// Counter difference since `earlier`: for every metric present here,
    /// `self - earlier` saturating at zero (metrics absent earlier count
    /// from zero). The result is what happened *between* the snapshots.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        Snapshot {
            pairs: self
                .pairs
                .iter()
                .map(|(name, value)| {
                    (name.clone(), value.saturating_sub(earlier.get(name).unwrap_or(0)))
                })
                .collect(),
        }
    }

    /// Number of metrics captured.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_prefixes_and_accumulates() {
        let mut reg = MetricsRegistry::new();
        reg.absorb("mem", &[("ecalls", 3), ("ocalls", 1)]);
        reg.absorb("mem", &[("ecalls", 2), ("ocalls", 0)]);
        reg.absorb("", &[("edge_frames", 7)]);
        assert_eq!(reg.get("mem.ecalls"), Some(5));
        assert_eq!(reg.get("mem.ocalls"), Some(1));
        assert_eq!(reg.get("edge_frames"), Some(7));
        assert_eq!(reg.len(), 3);
    }

    #[test]
    fn set_overwrites_add_accumulates() {
        let mut reg = MetricsRegistry::new();
        reg.add("x", 4);
        reg.add("x", 4);
        assert_eq!(reg.get("x"), Some(8));
        reg.set("x", 1);
        assert_eq!(reg.get("x"), Some(1));
    }

    #[test]
    fn snapshot_delta_is_per_phase() {
        let mut reg = MetricsRegistry::new();
        reg.add("ecalls", 10);
        let before = reg.snapshot();
        reg.add("ecalls", 5);
        reg.add("gaps", 2);
        let after = reg.snapshot();
        let delta = after.delta(&before);
        assert_eq!(delta.get("ecalls"), Some(5));
        assert_eq!(delta.get("gaps"), Some(2));
    }

    #[test]
    fn snapshot_lookup_is_sorted_binary_search() {
        let mut reg = MetricsRegistry::new();
        for name in ["zeta", "alpha", "mid"] {
            reg.set(name, name.len() as u64);
        }
        let snap = reg.snapshot();
        assert_eq!(snap.get("alpha"), Some(5));
        assert_eq!(snap.get("zeta"), Some(4));
        assert_eq!(snap.get("missing"), None);
        assert!(snap.pairs().windows(2).all(|w| w[0].0 < w[1].0));
    }
}
