//! Zero-allocation log₂-bucketed latency histograms.
//!
//! A [`LatencyHistogram`] is a fixed `[(epoch, count); 64]` array: bucket
//! `i` counts samples in `[2^i, 2^(i+1))` virtual nanoseconds (bucket 0
//! also absorbs zero). Each slot carries the epoch it was last written in,
//! so [`LatencyHistogram::clear`] is a single increment — a stale epoch
//! reads as zero — exactly the `MatchScratch` counting-index pattern.
//! Recording touches one array slot and allocates nothing, which is what
//! lets the histograms live inside the matching hot path without breaking
//! the counting-allocator zero-alloc proof.

/// Number of log₂ buckets — enough for any `u64` nanosecond value.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A log₂-bucketed latency histogram over a fixed array with
/// epoch-stamped O(1) clears. `Copy`-free but entirely inline: embedding
/// one in a scratch struct adds no heap allocation.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    /// `(epoch, count)` per bucket; a slot whose epoch is stale counts as
    /// zero.
    buckets: [(u64, u64); HISTOGRAM_BUCKETS],
    /// Current validity stamp.
    epoch: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        LatencyHistogram { buckets: [(0, 0); HISTOGRAM_BUCKETS], epoch: 1 }
    }

    /// Records one sample of `ns` nanoseconds. Never allocates.
    #[inline]
    pub fn record(&mut self, ns: u64) {
        let bucket = if ns == 0 { 0 } else { ns.ilog2() as usize };
        let slot = &mut self.buckets[bucket];
        if slot.0 == self.epoch {
            slot.1 += 1;
        } else {
            *slot = (self.epoch, 1);
        }
    }

    /// Forgets every sample in O(1) by advancing the epoch stamp.
    #[inline]
    pub fn clear(&mut self) {
        self.epoch += 1;
    }

    /// Count in bucket `i` (samples in `[2^i, 2^(i+1))` ns).
    pub fn bucket(&self, i: usize) -> u64 {
        let (epoch, count) = self.buckets[i];
        if epoch == self.epoch {
            count
        } else {
            0
        }
    }

    /// Inclusive lower bound of bucket `i` in nanoseconds.
    pub fn bucket_floor(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << i
        }
    }

    /// Total number of recorded samples.
    pub fn total(&self) -> u64 {
        (0..HISTOGRAM_BUCKETS).map(|i| self.bucket(i)).sum()
    }

    /// Upper bound (exclusive, saturating) of the bucket holding the
    /// `p`-th percentile sample, or 0 when empty. `p` in `[0, 100]`.
    pub fn percentile_ns(&self, p: u8) -> u64 {
        let total = self.total();
        if total == 0 {
            return 0;
        }
        // Rank of the percentile sample, 1-based, rounded up.
        let rank = ((total * p as u64).div_ceil(100)).max(1);
        let mut seen = 0;
        for i in 0..HISTOGRAM_BUCKETS {
            seen += self.bucket(i);
            if seen >= rank {
                return (1u64 << (i + 1).min(63)).saturating_sub(1).max(1);
            }
        }
        u64::MAX
    }

    /// Highest non-empty bucket's exclusive upper bound, or 0 when empty.
    pub fn max_ns(&self) -> u64 {
        (0..HISTOGRAM_BUCKETS)
            .rev()
            .find(|&i| self.bucket(i) > 0)
            .map(|i| (1u64 << (i + 1).min(63)).saturating_sub(1).max(1))
            .unwrap_or(0)
    }

    /// The non-empty `(bucket_floor_ns, count)` pairs — the export shape
    /// the JSON emitters and dump tools consume. Allocates (off the hot
    /// path).
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        (0..HISTOGRAM_BUCKETS)
            .filter_map(|i| {
                let count = self.bucket(i);
                (count > 0).then_some((Self::bucket_floor(i), count))
            })
            .collect()
    }
}

/// The hot-path stages instrumented across the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// AES-CTR header decryption inside the enclave.
    Decrypt,
    /// Containment-index traversal (decode + match).
    IndexMatch,
    /// ASPE Bloom gate + quadratic-form evaluation (the outside baseline).
    AspeGate,
    /// Sealing an outbound batch (or recovery record) for a link.
    Seal,
    /// One full enclave crossing routing a batch at a hop.
    HopCrossing,
}

impl Stage {
    /// Every stage, in display order.
    pub const ALL: [Stage; 5] =
        [Stage::Decrypt, Stage::IndexMatch, Stage::AspeGate, Stage::Seal, Stage::HopCrossing];

    /// Stable label used in metric names, JSON rows, and log lines.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Decrypt => "decrypt",
            Stage::IndexMatch => "index_match",
            Stage::AspeGate => "aspe_gate",
            Stage::Seal => "seal",
            Stage::HopCrossing => "hop_crossing",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Decrypt => 0,
            Stage::IndexMatch => 1,
            Stage::AspeGate => 2,
            Stage::Seal => 3,
            Stage::HopCrossing => 4,
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One fixed-size histogram per [`Stage`]; embedding this in a scratch
/// struct costs a few KiB of inline state and zero heap.
#[derive(Debug, Clone, Default)]
pub struct StageHistograms {
    stages: [LatencyHistogram; 5],
}

impl StageHistograms {
    /// Empty histograms for every stage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one `ns` sample for `stage`. Never allocates.
    #[inline]
    pub fn record(&mut self, stage: Stage, ns: u64) {
        self.stages[stage.index()].record(ns);
    }

    /// The histogram of one stage.
    pub fn histogram(&self, stage: Stage) -> &LatencyHistogram {
        &self.stages[stage.index()]
    }

    /// Clears every stage in O(stages).
    pub fn clear(&mut self) {
        for h in &mut self.stages {
            h.clear();
        }
    }

    /// Summaries of every stage that recorded at least one sample.
    pub fn summaries(&self) -> Vec<StageSummary> {
        Stage::ALL
            .iter()
            .filter_map(|&stage| {
                let h = self.histogram(stage);
                (h.total() > 0).then(|| StageSummary {
                    stage,
                    count: h.total(),
                    p50_ns: h.percentile_ns(50),
                    p99_ns: h.percentile_ns(99),
                    max_ns: h.max_ns(),
                })
            })
            .collect()
    }
}

/// A rendered summary of one stage's histogram (bucket upper bounds, so
/// values are conservative).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageSummary {
    /// Which stage.
    pub stage: Stage,
    /// Samples recorded.
    pub count: u64,
    /// Median latency (bucket upper bound), virtual ns.
    pub p50_ns: u64,
    /// 99th-percentile latency (bucket upper bound), virtual ns.
    pub p99_ns: u64,
    /// Upper bound of the slowest sample's bucket, virtual ns.
    pub max_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_bucketing() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        assert_eq!(h.bucket(0), 2, "0 and 1 share bucket 0");
        assert_eq!(h.bucket(1), 2, "2 and 3 share bucket 1");
        assert_eq!(h.bucket(10), 1);
        assert_eq!(h.total(), 5);
        assert_eq!(LatencyHistogram::bucket_floor(10), 1024);
    }

    #[test]
    fn epoch_clear_is_o1_and_complete() {
        let mut h = LatencyHistogram::new();
        for ns in [5u64, 500, 50_000] {
            h.record(ns);
        }
        assert_eq!(h.total(), 3);
        h.clear();
        assert_eq!(h.total(), 0, "stale epochs read as zero");
        assert_eq!(h.max_ns(), 0);
        h.record(7);
        assert_eq!(h.total(), 1, "recording after clear restamps the slot");
    }

    #[test]
    fn percentiles_use_bucket_upper_bounds() {
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(10); // bucket 3: [8, 16)
        }
        h.record(1 << 20); // bucket 20
        assert_eq!(h.percentile_ns(50), 15);
        assert_eq!(h.percentile_ns(99), 15);
        assert_eq!(h.percentile_ns(100), (1 << 21) - 1);
        assert_eq!(h.max_ns(), (1 << 21) - 1);
    }

    #[test]
    fn empty_histogram_percentile_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.percentile_ns(50), 0);
        assert_eq!(h.max_ns(), 0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn stage_histograms_track_independently() {
        let mut s = StageHistograms::new();
        s.record(Stage::Decrypt, 100);
        s.record(Stage::Decrypt, 120);
        s.record(Stage::Seal, 9000);
        assert_eq!(s.histogram(Stage::Decrypt).total(), 2);
        assert_eq!(s.histogram(Stage::Seal).total(), 1);
        assert_eq!(s.histogram(Stage::IndexMatch).total(), 0);
        let summaries = s.summaries();
        assert_eq!(summaries.len(), 2);
        assert_eq!(summaries[0].stage, Stage::Decrypt);
        assert_eq!(summaries[0].count, 2);
        s.clear();
        assert!(s.summaries().is_empty());
    }

    #[test]
    fn stage_labels_are_stable() {
        let labels: Vec<&str> = Stage::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels, vec!["decrypt", "index_match", "aspe_gate", "seal", "hop_crossing"]);
        assert_eq!(Stage::HopCrossing.to_string(), "hop_crossing");
    }
}
