//! Cross-hop publication tracing: trace ids, hop records, and the
//! bounded in-enclave flight recorder.
//!
//! A [`TraceId`] is assigned per publish batch at the producer and rides
//! **in clear** alongside the sealed link frame (bound into the frame's
//! AAD so it cannot be forged undetected). This is routing metadata, not
//! content: an observer of the untrusted network already sees frame
//! boundaries, sizes, direction, and sequence numbers, so a per-batch tag
//! reveals nothing beyond the linkability that timing correlation already
//! provides. What *would* leak selectivity — how many subscribers matched
//! — stays inside the enclave: hop records carry only a log₂
//! *bucket* of the matched count, and the records themselves leave the
//! enclave exclusively through an explicit drain ocall that the memory
//! simulator charges like any other crossing.

/// Identifier of one traced publish batch. `TraceId::NONE` (zero) means
/// "untraced" and is what plain frames and disabled-telemetry fabrics
/// carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The untraced sentinel carried when telemetry is off.
    pub const NONE: TraceId = TraceId(0);

    /// True when this id identifies an actual trace.
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace-{}", self.0)
    }
}

/// Log₂ bucket of a matched-subscriber count: 0 for no matches, otherwise
/// `1 + ilog2(n)` (bucket `b` covers `[2^(b-1), 2^b)`). Hop records carry
/// this instead of the exact count so drained telemetry does not leak
/// workload selectivity.
pub fn count_bucket(n: usize) -> u8 {
    if n == 0 {
        0
    } else {
        (n.ilog2() + 1) as u8
    }
}

/// One broker's observation of one traced batch: all `Copy`, so pushing
/// into the ring buffer never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HopRecord {
    /// The batch's trace id.
    pub trace: TraceId,
    /// Fabric index of the observing broker.
    pub broker: u64,
    /// Scheduler timestamp of the step that processed the hop. Each
    /// broker's `*_ns` clocks are its own enclave's virtual time —
    /// comparable within a hop, not across brokers — so this host-side
    /// tick is what orders a trace's hops globally.
    pub tick: u64,
    /// Virtual time the batch arrived at this broker.
    pub arrival_ns: u64,
    /// Virtual time matching completed.
    pub match_ns: u64,
    /// Virtual time the last onward frame was sealed.
    pub forward_ns: u64,
    /// [`count_bucket`] of the local match count (never the exact count).
    pub matched_bucket: u8,
}

impl HopRecord {
    /// Nanoseconds spent matching at this hop.
    pub fn match_latency_ns(&self) -> u64 {
        self.match_ns.saturating_sub(self.arrival_ns)
    }

    /// Nanoseconds spent sealing/forwarding at this hop.
    pub fn forward_latency_ns(&self) -> u64 {
        self.forward_ns.saturating_sub(self.match_ns)
    }
}

/// A bounded ring buffer of [`HopRecord`]s living inside the enclave.
///
/// The ring is fully preallocated at construction, so steady-state
/// `push` touches one slot and never allocates; when full, the oldest
/// record is overwritten and `dropped` counts the loss (bounded memory
/// beats unbounded history inside an enclave). Records leave via
/// [`FlightRecorder::drain_into`], which the broker wraps in an explicit
/// ocall so the crossing is costed and counted.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    ring: Vec<HopRecord>,
    head: usize,
    len: usize,
    dropped: u64,
}

/// Default ring capacity: enough for a few hundred in-flight traces per
/// broker between drains.
pub const DEFAULT_RECORDER_CAPACITY: usize = 256;

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_RECORDER_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` records (fully preallocated).
    pub fn with_capacity(capacity: usize) -> Self {
        FlightRecorder {
            ring: vec![HopRecord::default(); capacity.max(1)],
            head: 0,
            len: 0,
            dropped: 0,
        }
    }

    /// Appends a record, overwriting the oldest when full. Never
    /// allocates.
    #[inline]
    pub fn push(&mut self, record: HopRecord) {
        let capacity = self.ring.len();
        let slot = (self.head + self.len) % capacity;
        self.ring[slot] = record;
        if self.len == capacity {
            self.head = (self.head + 1) % capacity;
            self.dropped += 1;
        } else {
            self.len += 1;
        }
    }

    /// Records currently buffered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.ring.len()
    }

    /// Records overwritten before they could be drained.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Moves every buffered record into `out` (oldest first) and empties
    /// the ring. The drop counter is preserved across drains.
    pub fn drain_into(&mut self, out: &mut Vec<HopRecord>) {
        let capacity = self.ring.len();
        for i in 0..self.len {
            out.push(self.ring[(self.head + i) % capacity]);
        }
        self.head = 0;
        self.len = 0;
    }

    /// Allocating convenience wrapper around
    /// [`FlightRecorder::drain_into`].
    pub fn drain(&mut self) -> Vec<HopRecord> {
        let mut out = Vec::with_capacity(self.len);
        self.drain_into(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(trace: u64, at: u64) -> HopRecord {
        HopRecord {
            trace: TraceId(trace),
            broker: 0,
            tick: at,
            arrival_ns: at,
            match_ns: at + 5,
            forward_ns: at + 9,
            matched_bucket: 2,
        }
    }

    #[test]
    fn count_buckets_hide_exact_selectivity() {
        assert_eq!(count_bucket(0), 0);
        assert_eq!(count_bucket(1), 1);
        assert_eq!(count_bucket(2), 2);
        assert_eq!(count_bucket(3), 2);
        assert_eq!(count_bucket(4), 3);
        assert_eq!(count_bucket(1000), 10);
    }

    #[test]
    fn hop_latencies_decompose() {
        let r = rec(1, 100);
        assert_eq!(r.match_latency_ns(), 5);
        assert_eq!(r.forward_latency_ns(), 4);
    }

    #[test]
    fn ring_drains_in_order() {
        let mut fr = FlightRecorder::with_capacity(8);
        for i in 0..5 {
            fr.push(rec(i, i * 10));
        }
        assert_eq!(fr.len(), 5);
        let drained = fr.drain();
        assert_eq!(drained.len(), 5);
        assert!(drained.windows(2).all(|w| w[0].arrival_ns < w[1].arrival_ns));
        assert!(fr.is_empty());
        assert_eq!(fr.dropped(), 0);
    }

    #[test]
    fn full_ring_overwrites_oldest_and_counts_drops() {
        let mut fr = FlightRecorder::with_capacity(4);
        for i in 0..7 {
            fr.push(rec(i, i));
        }
        assert_eq!(fr.len(), 4);
        assert_eq!(fr.dropped(), 3);
        let drained = fr.drain();
        assert_eq!(drained.iter().map(|r| r.trace.0).collect::<Vec<_>>(), vec![3, 4, 5, 6]);
        // Drop counter survives the drain; buffering resumes cleanly.
        fr.push(rec(9, 9));
        assert_eq!(fr.len(), 1);
        assert_eq!(fr.dropped(), 3);
    }

    #[test]
    fn trace_id_sentinel() {
        assert!(!TraceId::NONE.is_some());
        assert!(TraceId(3).is_some());
        assert_eq!(TraceId(3).to_string(), "trace-3");
    }
}
