//! Telemetry spine of the SCBR reproduction.
//!
//! The paper evaluates SCBR almost entirely through measurement, and the
//! repro had grown one ad-hoc counter struct per subsystem
//! (`sgx_sim::MemStats`, the overlay's `BrokerStats`, ASPE's
//! `BloomGateStats`, the cluster's `SliceStats`, per-link forwarding
//! ledgers) with no shared surface. This crate is the surface:
//!
//! * [`MetricsRegistry`] — named monotonic counters/gauges with cheap
//!   [`Snapshot`]/[`Snapshot::delta`] semantics. Every stats struct in the
//!   workspace exports a uniform `snapshot() -> Vec<(&'static str, u64)>`
//!   that the registry absorbs under a prefix, so per-broker and
//!   per-fabric views are folds, not bespoke structs.
//! * [`LatencyHistogram`] / [`StageHistograms`] — zero-allocation
//!   log₂-bucketed latency distributions over fixed-size arrays with
//!   epoch-stamped O(1) clears (the `MatchScratch` pattern), safe to
//!   embed in the matching hot path without breaking the
//!   counting-allocator zero-alloc proof.
//! * [`TraceId`] / [`HopRecord`] / [`FlightRecorder`] — cross-hop
//!   publication tracing: a trace id assigned per publish batch at the
//!   producer rides in clear next to the sealed frame, and each broker
//!   appends a hop record (arrival/match/forward timestamps plus a
//!   matched-count *bucket*, never an exact count) into a bounded
//!   in-enclave ring buffer drained via an explicit, costed ocall.
//! * [`TelemetrySnapshot`] — the aggregate view `OverlayFabric` hands to
//!   the JSON emitters and the `scbr_top` dump tool.
//!
//! The crate is deliberately dependency-free (vendored-stand-in
//! discipline): everything here is plain arrays, `Vec`s off the hot path,
//! and integer arithmetic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod histogram;
pub mod registry;
pub mod trace;

pub use histogram::{LatencyHistogram, Stage, StageHistograms, StageSummary, HISTOGRAM_BUCKETS};
pub use registry::{MetricsRegistry, Snapshot};
pub use trace::{count_bucket, FlightRecorder, HopRecord, TraceId};

/// The fully aggregated telemetry view of a running fabric: fabric-level
/// counters, per-broker counter registries and stage latency summaries,
/// and every hop record drained from the brokers' flight recorders.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    /// Fabric-level counters (edge frames, drops, event-label counts,
    /// cross-broker totals).
    pub fabric: Snapshot,
    /// One entry per broker, in broker-index order.
    pub brokers: Vec<BrokerTelemetry>,
    /// Hop records drained from every broker's flight recorder, in
    /// (tick, broker) order.
    pub hops: Vec<HopRecord>,
}

impl TelemetrySnapshot {
    /// All hop records belonging to `trace`, ordered by scheduler tick —
    /// the per-publication path a dump tool renders. (Per-broker `*_ns`
    /// clocks are each enclave's own virtual time, so the host-side tick
    /// is the cross-broker ordering.)
    pub fn trace_path(&self, trace: TraceId) -> Vec<HopRecord> {
        let mut path: Vec<HopRecord> =
            self.hops.iter().copied().filter(|h| h.trace == trace).collect();
        path.sort_by_key(|h| (h.tick, h.broker));
        path
    }

    /// Sorted, deduplicated trace ids present in the drained hop records.
    pub fn traces(&self) -> Vec<TraceId> {
        let mut ids: Vec<TraceId> = self.hops.iter().map(|h| h.trace).collect();
        ids.sort_unstable_by_key(|t| t.0);
        ids.dedup();
        ids
    }
}

/// One broker's telemetry: its absorbed counter registry plus per-stage
/// latency summaries.
#[derive(Debug, Clone, Default)]
pub struct BrokerTelemetry {
    /// Fabric index of the broker.
    pub broker: u64,
    /// Every counter the broker exports, prefixed by subsystem
    /// (`mem.ecalls`, `broker.heartbeats`, `link.3.pruned`, …).
    pub counters: Snapshot,
    /// Per-stage latency summaries (decrypt, index match, seal, hop
    /// crossing) from the broker's zero-alloc histograms.
    pub stages: Vec<StageSummary>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_path_filters_and_orders() {
        let hop = |trace: u64, broker: u64, at: u64| HopRecord {
            trace: TraceId(trace),
            broker,
            tick: at,
            arrival_ns: at,
            match_ns: at + 1,
            forward_ns: at + 2,
            matched_bucket: 1,
        };
        let snap = TelemetrySnapshot {
            fabric: Snapshot::default(),
            brokers: Vec::new(),
            hops: vec![hop(2, 1, 50), hop(1, 0, 10), hop(1, 1, 30), hop(1, 2, 20)],
        };
        let path = snap.trace_path(TraceId(1));
        assert_eq!(path.iter().map(|h| h.broker).collect::<Vec<_>>(), vec![0, 2, 1]);
        assert_eq!(snap.traces(), vec![TraceId(1), TraceId(2)]);
    }
}
